// Package lcals implements the eleven Lcals-class RAJAPerf kernels —
// "the Livermore Compiler Analysis Loop Suite which is a collection of
// eleven loop based kernels including tridiagonal elimination,
// calculation of differences, and calculations of minimums and
// maximums".
package lcals

import (
	"repro/internal/ir"
	"repro/internal/kernels"
	"repro/internal/prec"
	"repro/internal/team"
)

const (
	defaultN = 1 << 20
	reps     = 500
)

func lin(n int) float64 { return float64(n) }

// --- DIFF_PREDICT: difference-table predictor -------------------------------

type diffPredictInst[F prec.Float] struct {
	n      int
	px, cx []F // 14 planes of n elements each, plane-major
}

func newDiffPredict[F prec.Float](n int) kernels.Instance {
	k := &diffPredictInst[F]{n: n, px: make([]F, 14*n), cx: make([]F, 14*n)}
	kernels.InitSeq(k.px)
	kernels.InitSeq(k.cx)
	return k
}

func (k *diffPredictInst[F]) Run(r team.Runner) {
	px, cx, off := k.px, k.cx, k.n
	team.For(r, k.n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			ar := cx[off*4+i]
			br := ar - px[off*4+i]
			px[off*4+i] = ar
			cr := br - px[off*5+i]
			px[off*5+i] = br
			ar = cr - px[off*6+i]
			px[off*6+i] = cr
			br = ar - px[off*7+i]
			px[off*7+i] = ar
			cr = br - px[off*8+i]
			px[off*8+i] = br
			ar = cr - px[off*9+i]
			px[off*9+i] = cr
			br = ar - px[off*10+i]
			px[off*10+i] = ar
			cr = br - px[off*11+i]
			px[off*11+i] = br
			px[off*13+i] = cr - px[off*12+i]
			px[off*12+i] = cr
		}
	})
}

func (k *diffPredictInst[F]) Checksum() float64 { return kernels.Checksum(k.px) }

// --- EOS: equation of state fragment -----------------------------------------

type eosInst[F prec.Float] struct {
	x, y, z, u []F
	q, rr, t   F
}

func newEOS[F prec.Float](n int) kernels.Instance {
	k := &eosInst[F]{
		x: make([]F, n), y: make([]F, n), z: make([]F, n), u: make([]F, n+7),
		q: 0.5, rr: 0.25, t: 0.125,
	}
	kernels.InitSeq(k.y)
	kernels.InitSeq(k.z)
	kernels.InitSeq(k.u)
	return k
}

func (k *eosInst[F]) Run(r team.Runner) {
	x, y, z, u := k.x, k.y, k.z, k.u
	q, rr, t := k.q, k.rr, k.t
	team.For(r, len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = u[i] + rr*(z[i]+rr*y[i]) +
				t*(u[i+3]+rr*(u[i+2]+rr*u[i+1])+
					t*(u[i+6]+q*(u[i+5]+q*u[i+4])))
		}
	})
}

func (k *eosInst[F]) Checksum() float64 { return kernels.Checksum(k.x) }

// --- FIRST_DIFF: x[i] = y[i+1] - y[i] -----------------------------------------

type firstDiffInst[F prec.Float] struct{ x, y []F }

func newFirstDiff[F prec.Float](n int) kernels.Instance {
	k := &firstDiffInst[F]{x: make([]F, n), y: make([]F, n+1)}
	kernels.InitSeq(k.y)
	return k
}

func (k *firstDiffInst[F]) Run(r team.Runner) {
	x, y := k.x, k.y
	team.For(r, len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = y[i+1] - y[i]
		}
	})
}

func (k *firstDiffInst[F]) Checksum() float64 { return kernels.Checksum(k.x) }

// --- FIRST_MIN: minimum value and its first location ---------------------------

type firstMinInst[F prec.Float] struct {
	x   []F
	min float64
	loc int
}

func newFirstMin[F prec.Float](n int) kernels.Instance {
	k := &firstMinInst[F]{x: make([]F, n)}
	kernels.InitSeq(k.x)
	k.x[n/2] = -1 // a unique minimum in the middle, as RAJAPerf plants
	return k
}

func (k *firstMinInst[F]) Run(r team.Runner) {
	x := k.x
	nt := r.NThreads()
	vals := make([]F, nt)
	locs := make([]int, nt)
	team.For(r, len(x), func(tid, lo, hi int) {
		best, bloc := x[lo], lo
		for i := lo + 1; i < hi; i++ {
			if x[i] < best {
				best, bloc = x[i], i
			}
		}
		vals[tid], locs[tid] = best, bloc
	})
	bv, bl := vals[0], locs[0]
	for t := 1; t < nt; t++ {
		if vals[t] < bv || (vals[t] == bv && locs[t] < bl) {
			bv, bl = vals[t], locs[t]
		}
	}
	k.min, k.loc = float64(bv), bl
}

func (k *firstMinInst[F]) Checksum() float64 { return k.min + float64(k.loc) }

// --- FIRST_SUM: x[i] = y[i-1] + y[i] --------------------------------------------

type firstSumInst[F prec.Float] struct{ x, y []F }

func newFirstSum[F prec.Float](n int) kernels.Instance {
	k := &firstSumInst[F]{x: make([]F, n), y: make([]F, n)}
	kernels.InitSeq(k.y)
	return k
}

func (k *firstSumInst[F]) Run(r team.Runner) {
	x, y := k.x, k.y
	x[0] = y[0]
	team.For(r, len(x)-1, func(_, lo, hi int) {
		for i := lo + 1; i < hi+1; i++ {
			x[i] = y[i-1] + y[i]
		}
	})
}

func (k *firstSumInst[F]) Checksum() float64 { return kernels.Checksum(k.x) }

// --- GEN_LIN_RECUR: general linear recurrence (loop-carried) --------------------

type genLinRecurInst[F prec.Float] struct {
	b5, sa, sb []F
	stb5       F
}

func newGenLinRecur[F prec.Float](n int) kernels.Instance {
	k := &genLinRecurInst[F]{b5: make([]F, n), sa: make([]F, n), sb: make([]F, n), stb5: 0.1}
	kernels.InitSeq(k.sa)
	kernels.InitSigned(k.sb)
	return k
}

func (k *genLinRecurInst[F]) Run(r team.Runner) {
	// The recurrence is truly loop-carried: stb5 feeds forward. It runs
	// sequentially regardless of the team size, exactly as the OpenMP
	// suite executes it (the Spec is marked SeqOnly).
	b5, sa, sb := k.b5, k.sa, k.sb
	stb5 := k.stb5
	for i := range b5 {
		b5[i] = sa[i] + stb5*sb[i]
		stb5 = b5[i] - stb5
	}
	// Second LCALS pass runs the recurrence backwards.
	for i := len(b5) - 1; i >= 0; i-- {
		b5[i] = sa[i] + stb5*sb[i]
		stb5 = b5[i] - stb5
	}
	k.stb5 = stb5
}

func (k *genLinRecurInst[F]) Checksum() float64 { return kernels.Checksum(k.b5) }

// --- HYDRO_1D: x[i] = q + y[i]*(r*z[i+10] + t*z[i+11]) ---------------------------

type hydro1DInst[F prec.Float] struct {
	x, y, z  []F
	q, rr, t F
}

func newHydro1D[F prec.Float](n int) kernels.Instance {
	k := &hydro1DInst[F]{
		x: make([]F, n), y: make([]F, n), z: make([]F, n+12),
		q: 0.5, rr: 0.25, t: 0.125,
	}
	kernels.InitSeq(k.y)
	kernels.InitSeq(k.z)
	return k
}

func (k *hydro1DInst[F]) Run(r team.Runner) {
	x, y, z := k.x, k.y, k.z
	q, rr, t := k.q, k.rr, k.t
	team.For(r, len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			x[i] = q + y[i]*(rr*z[i+10]+t*z[i+11])
		}
	})
}

func (k *hydro1DInst[F]) Checksum() float64 { return kernels.Checksum(k.x) }

// --- HYDRO_2D: two-dimensional hydrodynamics fragment -----------------------------

type hydro2DInst[F prec.Float] struct {
	jn, kn                 int
	za, zb, zm, zp, zq, zr []F
	zu, zv, zz             []F
	s, t                   F
}

func newHydro2D[F prec.Float](n int) kernels.Instance {
	// Shape the linear size into a jn x kn grid.
	jn := 1
	for (jn+1)*(jn+1) <= n {
		jn++
	}
	kn := jn
	sz := jn * kn
	k := &hydro2DInst[F]{
		jn: jn, kn: kn,
		za: make([]F, sz), zb: make([]F, sz), zm: make([]F, sz),
		zp: make([]F, sz), zq: make([]F, sz), zr: make([]F, sz),
		zu: make([]F, sz), zv: make([]F, sz), zz: make([]F, sz),
		s: 0.0041, t: 0.0037,
	}
	kernels.InitSeq(k.zp)
	kernels.InitSeq(k.zq)
	kernels.InitSeq(k.zr)
	kernels.InitSeq(k.zm)
	kernels.InitSeq(k.zz)
	return k
}

func (k *hydro2DInst[F]) Run(r team.Runner) {
	jn, kn := k.jn, k.kn
	za, zb, zm, zp, zq, zr := k.za, k.zb, k.zm, k.zp, k.zq, k.zr
	zu, zv, zz := k.zu, k.zv, k.zz
	s, t := k.s, k.t
	idx := func(kk, j int) int { return kk*jn + j }
	// Loop 1.
	team.For(r, kn-2, func(_, lo, hi int) {
		for kk := lo + 1; kk < hi+1; kk++ {
			for j := 1; j < jn-1; j++ {
				za[idx(kk, j)] = (zp[idx(kk+1, j-1)] + zq[idx(kk+1, j-1)] - zp[idx(kk, j-1)] - zq[idx(kk, j-1)]) *
					(zr[idx(kk, j)] + zr[idx(kk, j-1)]) / (zm[idx(kk, j-1)] + zm[idx(kk+1, j-1)])
				zb[idx(kk, j)] = (zp[idx(kk, j-1)] + zq[idx(kk, j-1)] - zp[idx(kk, j)] - zq[idx(kk, j)]) *
					(zr[idx(kk, j)] + zr[idx(kk-1, j)]) / (zm[idx(kk, j)] + zm[idx(kk, j-1)])
			}
		}
	})
	// Loop 2.
	team.For(r, kn-2, func(_, lo, hi int) {
		for kk := lo + 1; kk < hi+1; kk++ {
			for j := 1; j < jn-1; j++ {
				zu[idx(kk, j)] += s * (za[idx(kk, j)]*(zz[idx(kk, j)]-zz[idx(kk, j+1)]) -
					za[idx(kk, j-1)]*(zz[idx(kk, j)]-zz[idx(kk, j-1)]) -
					zb[idx(kk, j)]*(zz[idx(kk, j)]-zz[idx(kk-1, j)]) +
					zb[idx(kk+1, j)]*(zz[idx(kk, j)]-zz[idx(kk+1, j)]))
				zv[idx(kk, j)] += s * (za[idx(kk, j)]*(zr[idx(kk, j)]-zr[idx(kk, j+1)]) -
					za[idx(kk, j-1)]*(zr[idx(kk, j)]-zr[idx(kk, j-1)]) -
					zb[idx(kk, j)]*(zr[idx(kk, j)]-zr[idx(kk-1, j)]) +
					zb[idx(kk+1, j)]*(zr[idx(kk, j)]-zr[idx(kk+1, j)]))
			}
		}
	})
	// Loop 3.
	team.For(r, kn-2, func(_, lo, hi int) {
		for kk := lo + 1; kk < hi+1; kk++ {
			for j := 1; j < jn-1; j++ {
				zr[idx(kk, j)] += t * zu[idx(kk, j)]
				zz[idx(kk, j)] += t * zv[idx(kk, j)]
			}
		}
	})
}

func (k *hydro2DInst[F]) Checksum() float64 {
	return kernels.Checksum(k.zr) + kernels.Checksum(k.zz)
}

// --- INT_PREDICT: integrate predictors --------------------------------------------

type intPredictInst[F prec.Float] struct {
	n                                            int
	px                                           []F // 13 planes
	dm22, dm23, dm24, dm25, dm26, dm27, dm28, c0 F
}

func newIntPredict[F prec.Float](n int) kernels.Instance {
	k := &intPredictInst[F]{
		n: n, px: make([]F, 13*n),
		dm22: 0.1, dm23: 0.2, dm24: 0.3, dm25: 0.4, dm26: 0.5, dm27: 0.6, dm28: 0.7, c0: 1.1,
	}
	kernels.InitSeq(k.px)
	return k
}

func (k *intPredictInst[F]) Run(r team.Runner) {
	px, off := k.px, k.n
	team.For(r, k.n, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			px[i] = k.dm28*px[off*12+i] + k.dm27*px[off*11+i] + k.dm26*px[off*10+i] +
				k.dm25*px[off*9+i] + k.dm24*px[off*8+i] + k.dm23*px[off*7+i] +
				k.dm22*px[off*6+i] +
				k.c0*(px[off*4+i]+px[off*5+i]) + px[off*2+i]
		}
	})
}

func (k *intPredictInst[F]) Checksum() float64 { return kernels.Checksum(k.px[:k.n]) }

// --- PLANCKIAN: w[i] = x[i] / (exp(y[i]/v[i]) - 1) -----------------------------------

type planckianInst[F prec.Float] struct {
	x, y, u, v, w []F
}

func newPlanckian[F prec.Float](n int) kernels.Instance {
	k := &planckianInst[F]{
		x: make([]F, n), y: make([]F, n), u: make([]F, n), v: make([]F, n), w: make([]F, n),
	}
	kernels.InitSeq(k.x)
	kernels.InitSeq(k.u)
	kernels.InitConst(k.v, 0.5)
	return k
}

func (k *planckianInst[F]) Run(r team.Runner) {
	x, y, u, v, w := k.x, k.y, k.u, k.v, k.w
	expmax := F(20)
	team.For(r, len(x), func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			y[i] = u[i] / v[i]
			if y[i] > expmax {
				y[i] = expmax
			}
			w[i] = x[i] / (kernels.Exp(y[i]) - 1)
		}
	})
}

func (k *planckianInst[F]) Checksum() float64 { return kernels.Checksum(k.w) }

// --- TRIDIAG_ELIM: xout[i] = z[i] * (y[i] - xin[i-1]) ---------------------------------

type tridiagElimInst[F prec.Float] struct {
	xout, xin, y, z []F
}

func newTridiagElim[F prec.Float](n int) kernels.Instance {
	k := &tridiagElimInst[F]{
		xout: make([]F, n), xin: make([]F, n), y: make([]F, n), z: make([]F, n),
	}
	kernels.InitSeq(k.xin)
	kernels.InitSeq(k.y)
	kernels.InitConst(k.z, 0.5)
	return k
}

func (k *tridiagElimInst[F]) Run(r team.Runner) {
	xout, xin, y, z := k.xout, k.xin, k.y, k.z
	team.For(r, len(xout)-1, func(_, lo, hi int) {
		for i := lo + 1; i < hi+1; i++ {
			xout[i] = z[i] * (y[i] - xin[i-1])
		}
	})
}

func (k *tridiagElimInst[F]) Checksum() float64 { return kernels.Checksum(k.xout) }

// Specs returns the eleven Lcals kernels.
func Specs() []kernels.Spec {
	unitF := func(arr string, kind ir.AccessKind) ir.Access {
		return ir.Access{Array: arr, Kind: kind, Pattern: ir.Unit, PerIter: 1}
	}
	return []kernels.Spec{
		{
			Name: "DIFF_PREDICT", Class: kernels.Lcals,
			Loop: ir.Loop{Kernel: "DIFF_PREDICT", Nest: 1, FlopsPerIter: 9,
				Features: ir.NonUnitStride,
				Accesses: []ir.Access{
					{Array: "px", Kind: ir.Load, Pattern: ir.Strided, Stride: 1 << 20, PerIter: 10},
					{Array: "cx", Kind: ir.Load, Pattern: ir.Strided, Stride: 1 << 20, PerIter: 1},
					{Array: "px", Kind: ir.Store, Pattern: ir.Strided, Stride: 1 << 20, PerIter: 10}}},
			DefaultN: defaultN / 8, Reps: reps / 4, Regions: 1,
			Iters: lin, FootprintElems: func(n int) float64 { return 28 * float64(n) },
			Build32: newDiffPredict[float32], Build64: newDiffPredict[float64],
		},
		{
			Name: "EOS", Class: kernels.Lcals,
			Loop: ir.Loop{Kernel: "EOS", Nest: 1, FlopsPerIter: 16,
				Features: ir.PotentialAlias,
				Accesses: []ir.Access{
					unitF("y", ir.Load), unitF("z", ir.Load),
					{Array: "u", Kind: ir.Load, Pattern: ir.Stencil, PerIter: 7},
					unitF("x", ir.Store)}},
			DefaultN: defaultN, Reps: reps, Regions: 1,
			Iters: lin, FootprintElems: func(n int) float64 { return 4 * float64(n) },
			Build32: newEOS[float32], Build64: newEOS[float64],
		},
		{
			Name: "FIRST_DIFF", Class: kernels.Lcals,
			Loop: ir.Loop{Kernel: "FIRST_DIFF", Nest: 1, FlopsPerIter: 1,
				Accesses: []ir.Access{
					{Array: "y", Kind: ir.Load, Pattern: ir.Stencil, PerIter: 2},
					unitF("x", ir.Store)}},
			DefaultN: defaultN, Reps: reps, Regions: 1,
			Iters: lin, FootprintElems: func(n int) float64 { return 2 * float64(n) },
			Build32: newFirstDiff[float32], Build64: newFirstDiff[float64],
		},
		{
			Name: "FIRST_MIN", Class: kernels.Lcals,
			Loop: ir.Loop{Kernel: "FIRST_MIN", Nest: 1, FlopsPerIter: 1,
				Features: ir.MinMaxReduction | ir.MinMaxLoc | ir.Conditional,
				Accesses: []ir.Access{unitF("x", ir.Load)}},
			DefaultN: defaultN, Reps: reps / 2, Regions: 1,
			Iters: lin, FootprintElems: func(n int) float64 { return float64(n) },
			Build32: newFirstMin[float32], Build64: newFirstMin[float64],
		},
		{
			Name: "FIRST_SUM", Class: kernels.Lcals,
			Loop: ir.Loop{Kernel: "FIRST_SUM", Nest: 1, FlopsPerIter: 1,
				Features: ir.PotentialAlias,
				Accesses: []ir.Access{
					{Array: "y", Kind: ir.Load, Pattern: ir.Stencil, PerIter: 2},
					unitF("x", ir.Store)}},
			DefaultN: defaultN, Reps: reps, Regions: 1,
			Iters: lin, FootprintElems: func(n int) float64 { return 2 * float64(n) },
			Build32: newFirstSum[float32], Build64: newFirstSum[float64],
		},
		{
			Name: "GEN_LIN_RECUR", Class: kernels.Lcals,
			Loop: ir.Loop{Kernel: "GEN_LIN_RECUR", Nest: 1, FlopsPerIter: 3,
				Features: ir.LoopCarried,
				Accesses: []ir.Access{
					unitF("sa", ir.Load), unitF("sb", ir.Load), unitF("b5", ir.Store)}},
			DefaultN: defaultN / 4, Reps: reps / 4, Regions: 2, SeqOnly: true,
			Iters:          func(n int) float64 { return 2 * float64(n) },
			FootprintElems: func(n int) float64 { return 3 * float64(n) },
			Build32:        newGenLinRecur[float32], Build64: newGenLinRecur[float64],
		},
		{
			Name: "HYDRO_1D", Class: kernels.Lcals,
			Loop: ir.Loop{Kernel: "HYDRO_1D", Nest: 1, FlopsPerIter: 5,
				Accesses: []ir.Access{
					unitF("y", ir.Load),
					{Array: "z", Kind: ir.Load, Pattern: ir.Stencil, PerIter: 2},
					unitF("x", ir.Store)}},
			DefaultN: defaultN, Reps: reps, Regions: 1,
			Iters: lin, FootprintElems: func(n int) float64 { return 3 * float64(n) },
			Build32: newHydro1D[float32], Build64: newHydro1D[float64],
		},
		{
			Name: "HYDRO_2D", Class: kernels.Lcals,
			Loop: ir.Loop{Kernel: "HYDRO_2D", Nest: 2, FlopsPerIter: 22,
				Features: ir.PotentialAlias,
				Accesses: []ir.Access{
					{Array: "zp", Kind: ir.Load, Pattern: ir.Stencil, PerIter: 4},
					{Array: "zq", Kind: ir.Load, Pattern: ir.Stencil, PerIter: 4},
					{Array: "zr", Kind: ir.Load, Pattern: ir.Stencil, PerIter: 3},
					{Array: "zm", Kind: ir.Load, Pattern: ir.Stencil, PerIter: 3},
					{Array: "zz", Kind: ir.Load, Pattern: ir.Stencil, PerIter: 3},
					unitF("za", ir.Store), unitF("zb", ir.Store),
					unitF("zu", ir.Store), unitF("zv", ir.Store)}},
			DefaultN: defaultN / 4, Reps: reps / 8, Regions: 3,
			Iters: func(n int) float64 {
				jn := 1
				for (jn+1)*(jn+1) <= n {
					jn++
				}
				return float64((jn - 2) * (jn - 2))
			},
			FootprintElems: func(n int) float64 { return 9 * float64(n) },
			Build32:        newHydro2D[float32], Build64: newHydro2D[float64],
		},
		{
			Name: "INT_PREDICT", Class: kernels.Lcals,
			Loop: ir.Loop{Kernel: "INT_PREDICT", Nest: 1, FlopsPerIter: 17,
				Features: ir.NonUnitStride,
				Accesses: []ir.Access{
					{Array: "px", Kind: ir.Load, Pattern: ir.Strided, Stride: 1 << 20, PerIter: 10},
					{Array: "px", Kind: ir.Store, Pattern: ir.Strided, Stride: 1 << 20, PerIter: 1}}},
			DefaultN: defaultN / 8, Reps: reps / 4, Regions: 1,
			Iters: lin, FootprintElems: func(n int) float64 { return 13 * float64(n) },
			Build32: newIntPredict[float32], Build64: newIntPredict[float64],
		},
		{
			Name: "PLANCKIAN", Class: kernels.Lcals,
			Loop: ir.Loop{Kernel: "PLANCKIAN", Nest: 1, FlopsPerIter: 4,
				Features: ir.FunctionCall | ir.Conditional,
				Accesses: []ir.Access{
					unitF("x", ir.Load), unitF("u", ir.Load), unitF("v", ir.Load),
					unitF("y", ir.Store), unitF("w", ir.Store)}},
			DefaultN: defaultN / 2, Reps: reps / 4, Regions: 1,
			Iters: lin, FootprintElems: func(n int) float64 { return 5 * float64(n) },
			Build32: newPlanckian[float32], Build64: newPlanckian[float64],
		},
		{
			Name: "TRIDIAG_ELIM", Class: kernels.Lcals,
			Loop: ir.Loop{Kernel: "TRIDIAG_ELIM", Nest: 1, FlopsPerIter: 2,
				Features: ir.PotentialAlias,
				Accesses: []ir.Access{
					unitF("y", ir.Load), unitF("z", ir.Load),
					{Array: "xin", Kind: ir.Load, Pattern: ir.Stencil, PerIter: 1},
					unitF("xout", ir.Store)}},
			DefaultN: defaultN, Reps: reps, Regions: 1,
			Iters: lin, FootprintElems: func(n int) float64 { return 4 * float64(n) },
			Build32: newTridiagElim[float32], Build64: newTridiagElim[float64],
		},
	}
}
