package placement

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

func mustMap(t *testing.T, m *machine.Machine, p Policy, threads int) []int {
	t.Helper()
	cores, err := Map(m, p, threads)
	if err != nil {
		t.Fatalf("Map(%v, %d): %v", p, threads, err)
	}
	return cores
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestBlockIsIdentity(t *testing.T) {
	m := machine.SG2042()
	got := mustMap(t, m, Block, 6)
	if !equalInts(got, []int{0, 1, 2, 3, 4, 5}) {
		t.Errorf("block map = %v", got)
	}
}

func TestCyclicMatchesPaperExamples(t *testing.T) {
	m := machine.SG2042()
	// "four threads are mapped to cores 0, 8, 32, and 40"
	got := mustMap(t, m, CyclicNUMA, 4)
	if !equalInts(got, []int{0, 8, 32, 40}) {
		t.Errorf("cyclic 4 threads = %v, want [0 8 32 40]", got)
	}
	// "eight threads are placed onto cores 0, 8, 32, 40, 1, 9, 33, and 41"
	got = mustMap(t, m, CyclicNUMA, 8)
	if !equalInts(got, []int{0, 8, 32, 40, 1, 9, 33, 41}) {
		t.Errorf("cyclic 8 threads = %v, want [0 8 32 40 1 9 33 41]", got)
	}
}

func TestClusterCyclicMatchesPaperExample(t *testing.T) {
	m := machine.SG2042()
	// "8 threads would be mapped to cores 0, 8, 32, 40, 16, 24, 48, and 56"
	got := mustMap(t, m, ClusterCyclic, 8)
	if !equalInts(got, []int{0, 8, 32, 40, 16, 24, 48, 56}) {
		t.Errorf("cluster-cyclic 8 threads = %v, want [0 8 32 40 16 24 48 56]", got)
	}
}

func TestClusterCyclicSpreadsL2(t *testing.T) {
	m := machine.SG2042()
	// With 16 threads, cluster-cyclic must hit 16 distinct clusters —
	// one thread per L2 — while block crams them into 4 clusters.
	cc := Analyze(m, mustMap(t, m, ClusterCyclic, 16))
	if cc.ClustersUsed != 16 || cc.MaxPerCluster != 1 {
		t.Errorf("cluster-cyclic 16: clusters=%d max=%d, want 16/1",
			cc.ClustersUsed, cc.MaxPerCluster)
	}
	bl := Analyze(m, mustMap(t, m, Block, 16))
	if bl.ClustersUsed != 4 || bl.MaxPerCluster != 4 {
		t.Errorf("block 16: clusters=%d max=%d, want 4/4", bl.ClustersUsed, bl.MaxPerCluster)
	}
}

func TestNUMASpread(t *testing.T) {
	m := machine.SG2042()
	// Block with 16 threads fills regions 0 and 1 (8 threads each: the
	// SG2042's regions interleave in blocks of 8 core ids).
	bl := Analyze(m, mustMap(t, m, Block, 16))
	if bl.NUMARegionsUsed != 2 {
		t.Errorf("block 16 uses %d NUMA regions, want 2", bl.NUMARegionsUsed)
	}
	// Cyclic with 16 spreads 4 threads into each of the 4 regions.
	cy := Analyze(m, mustMap(t, m, CyclicNUMA, 16))
	if cy.NUMARegionsUsed != 4 || cy.MaxPerNUMA != 4 {
		t.Errorf("cyclic 16: regions=%d max=%d, want 4/4", cy.NUMARegionsUsed, cy.MaxPerNUMA)
	}
	// Block with 4 threads sits entirely in region 0.
	bl4 := Analyze(m, mustMap(t, m, Block, 4))
	if bl4.NUMARegionsUsed != 1 {
		t.Errorf("block 4 uses %d regions, want 1", bl4.NUMARegionsUsed)
	}
}

func TestFullMachineUsesEveryCore(t *testing.T) {
	for _, m := range machine.All() {
		for _, p := range Policies {
			cores := mustMap(t, m, p, m.Cores)
			if !Unique(cores) {
				t.Errorf("%s/%v: duplicate cores in full mapping", m.Label, p)
			}
			sorted := SortedCopy(cores)
			for i, c := range sorted {
				if c != i {
					t.Errorf("%s/%v: full mapping is not a permutation (got %v)",
						m.Label, p, sorted)
					break
				}
			}
		}
	}
}

func TestMappingsArePartialPermutations(t *testing.T) {
	// Property: for every machine, policy and legal thread count, the
	// mapping has no duplicate cores and every core id is in range.
	machines := machine.All()
	f := func(mi, pi, ti uint8) bool {
		m := machines[int(mi)%len(machines)]
		p := Policies[int(pi)%len(Policies)]
		threads := 1 + int(ti)%m.Cores
		cores, err := Map(m, p, threads)
		if err != nil {
			return false
		}
		if len(cores) != threads || !Unique(cores) {
			return false
		}
		for _, c := range cores {
			if c < 0 || c >= m.Cores {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestCyclicNeverWorseNUMASpreadThanBlock(t *testing.T) {
	// Property: at any thread count, cyclic placement uses at least as
	// many NUMA regions as block placement — the whole point of the
	// policy.
	m := machine.SG2042()
	for threads := 1; threads <= 64; threads++ {
		cy := Analyze(m, mustMap(t, m, CyclicNUMA, threads))
		bl := Analyze(m, mustMap(t, m, Block, threads))
		if cy.NUMARegionsUsed < bl.NUMARegionsUsed {
			t.Errorf("threads=%d: cyclic uses %d regions < block %d",
				threads, cy.NUMARegionsUsed, bl.NUMARegionsUsed)
		}
		cc := Analyze(m, mustMap(t, m, ClusterCyclic, threads))
		if cc.ClustersUsed < cy.ClustersUsed {
			t.Errorf("threads=%d: cluster-cyclic uses %d clusters < cyclic %d",
				threads, cc.ClustersUsed, cy.ClustersUsed)
		}
	}
}

func TestRejectsBadArguments(t *testing.T) {
	m := machine.SG2042()
	if _, err := Map(m, Block, 0); err == nil {
		t.Error("0 threads accepted")
	}
	if _, err := Map(m, Block, 65); err == nil {
		t.Error("oversubscription accepted")
	}
	if _, err := Map(m, Policy(99), 4); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestAnalyzeCounts(t *testing.T) {
	m := machine.SG2042()
	s := Analyze(m, []int{0, 1, 2, 3, 8})
	if s.ThreadsPerNUMA[0] != 4 || s.ThreadsPerNUMA[1] != 1 {
		t.Errorf("ThreadsPerNUMA = %v", s.ThreadsPerNUMA)
	}
	if s.ThreadsPerCluster[0] != 4 || s.ThreadsPerCluster[2] != 1 {
		t.Errorf("ThreadsPerCluster = %v", s.ThreadsPerCluster)
	}
	if s.MaxPerCluster != 4 || s.MaxPerNUMA != 4 {
		t.Errorf("max sharers wrong: %+v", s)
	}
}

func TestDescribe(t *testing.T) {
	if got := Describe([]int{0, 8, 32, 40}); got != "cores 0, 8, 32, 40" {
		t.Errorf("Describe = %q", got)
	}
}

func TestSingleNUMAMachinesDegenerate(t *testing.T) {
	// On a single-NUMA machine without clusters, cyclic == block.
	m := machine.Xeon6330()
	for threads := 1; threads <= m.Cores; threads += 5 {
		bl := mustMap(t, m, Block, threads)
		cy := mustMap(t, m, CyclicNUMA, threads)
		if !equalInts(bl, cy) {
			t.Errorf("threads=%d: cyclic %v != block %v on single-NUMA machine",
				threads, cy, bl)
		}
	}
}

func TestPolicyString(t *testing.T) {
	for _, p := range Policies {
		if p.String() == "" {
			t.Error("empty policy name")
		}
	}
}
