package placement

import (
	"testing"

	"repro/internal/machine"
)

// The dual-socket analogues of the paper's Section 3.2 core-id
// examples: exhaustive mapping tables for each policy on the SG2042x2
// preset, whose second socket mirrors the SG2042's lscpu layout 64
// core ids (and 4 NUMA regions) up.
func TestDualSocketMappingTables(t *testing.T) {
	m := machine.SG2042x2()
	cases := []struct {
		policy  Policy
		threads int
		want    []int
	}{
		// Block stays contiguous: it fills socket 0 before touching
		// socket 1.
		{Block, 8, []int{0, 1, 2, 3, 4, 5, 6, 7}},
		{Block, 66, seq(0, 66)},
		// CyclicNUMA round-robins all eight regions — four per socket —
		// so even 8 threads straddle the socket link.
		{CyclicNUMA, 4, []int{0, 8, 32, 40}},
		{CyclicNUMA, 8, []int{0, 8, 32, 40, 64, 72, 96, 104}},
		{CyclicNUMA, 16, []int{0, 8, 32, 40, 64, 72, 96, 104, 1, 9, 33, 41, 65, 73, 97, 105}},
		// ClusterCyclic's second pass lands on fresh L2 clusters in every
		// region of both sockets.
		{ClusterCyclic, 8, []int{0, 8, 32, 40, 64, 72, 96, 104}},
		{ClusterCyclic, 16, []int{0, 8, 32, 40, 64, 72, 96, 104, 16, 24, 48, 56, 80, 88, 112, 120}},
	}
	for _, tc := range cases {
		got := mustMap(t, m, tc.policy, tc.threads)
		if !equalInts(got, tc.want) {
			t.Errorf("%v %d threads = %v, want %v", tc.policy, tc.threads, got, tc.want)
		}
	}
}

func seq(from, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = from + i
	}
	return out
}

// TestDualSocketSharing pins the induced per-socket / per-region /
// per-cluster structure of each policy's mapping on the SG2042x2.
func TestDualSocketSharing(t *testing.T) {
	m := machine.SG2042x2()
	cases := []struct {
		policy           Policy
		threads          int
		perSocket        []int
		socketsUsed      int
		maxPerSocket     int
		regionsUsed      int
		maxPerNUMA       int
		maxRegionsPerSkt int
		clustersUsed     int
		maxPerCluster    int
	}{
		// 8 block threads: one socket, one region, two full clusters.
		{Block, 8, []int{8, 0}, 1, 8, 1, 8, 1, 2, 4},
		// 8 cyclic threads: both sockets, all eight regions, one thread
		// each — the mapping that newly pays the inter-socket link.
		{CyclicNUMA, 8, []int{4, 4}, 2, 4, 8, 1, 4, 8, 1},
		// 16 cluster-cyclic threads: 16 distinct L2s, 8 per socket.
		{ClusterCyclic, 16, []int{8, 8}, 2, 8, 8, 2, 4, 16, 1},
		// Full machine: everything saturated symmetrically.
		{Block, 128, []int{64, 64}, 2, 64, 8, 16, 4, 32, 4},
	}
	for _, tc := range cases {
		s := Analyze(m, mustMap(t, m, tc.policy, tc.threads))
		if !equalInts(s.ThreadsPerSocket, tc.perSocket) {
			t.Errorf("%v %d: ThreadsPerSocket = %v, want %v",
				tc.policy, tc.threads, s.ThreadsPerSocket, tc.perSocket)
		}
		if s.SocketsUsed != tc.socketsUsed || s.MaxPerSocket != tc.maxPerSocket {
			t.Errorf("%v %d: sockets used/max = %d/%d, want %d/%d",
				tc.policy, tc.threads, s.SocketsUsed, s.MaxPerSocket, tc.socketsUsed, tc.maxPerSocket)
		}
		if s.NUMARegionsUsed != tc.regionsUsed || s.MaxPerNUMA != tc.maxPerNUMA {
			t.Errorf("%v %d: regions used/max = %d/%d, want %d/%d",
				tc.policy, tc.threads, s.NUMARegionsUsed, s.MaxPerNUMA, tc.regionsUsed, tc.maxPerNUMA)
		}
		if s.MaxRegionsPerSocket != tc.maxRegionsPerSkt {
			t.Errorf("%v %d: MaxRegionsPerSocket = %d, want %d",
				tc.policy, tc.threads, s.MaxRegionsPerSocket, tc.maxRegionsPerSkt)
		}
		if s.ClustersUsed != tc.clustersUsed || s.MaxPerCluster != tc.maxPerCluster {
			t.Errorf("%v %d: clusters used/max = %d/%d, want %d/%d",
				tc.policy, tc.threads, s.ClustersUsed, s.MaxPerCluster, tc.clustersUsed, tc.maxPerCluster)
		}
		if s.NodesUsed != 1 || s.MaxPerNode != tc.threads {
			t.Errorf("%v %d: node sharing = %d used, %d max; the board is one node",
				tc.policy, tc.threads, s.NodesUsed, s.MaxPerNode)
		}
	}
}

// TestSingleSocketSharingDegenerates: on every single-package preset
// the new fields must collapse to the old ones — the identity the
// performance model's bit-compatibility rests on.
func TestSingleSocketSharingDegenerates(t *testing.T) {
	for _, m := range machine.All() {
		for _, p := range Policies {
			for threads := 1; threads <= m.Cores; threads += 3 {
				s := Analyze(m, mustMap(t, m, p, threads))
				if len(s.ThreadsPerSocket) != 1 || s.ThreadsPerSocket[0] != threads {
					t.Fatalf("%s/%v/%d: ThreadsPerSocket = %v", m.Label, p, threads, s.ThreadsPerSocket)
				}
				if s.MaxPerSocket != threads || s.SocketsUsed != 1 ||
					s.MaxPerNode != threads || s.NodesUsed != 1 {
					t.Fatalf("%s/%v/%d: socket/node sharing %+v", m.Label, p, threads, s)
				}
				if s.MaxRegionsPerSocket != s.NUMARegionsUsed {
					t.Fatalf("%s/%v/%d: MaxRegionsPerSocket %d != NUMARegionsUsed %d",
						m.Label, p, threads, s.MaxRegionsPerSocket, s.NUMARegionsUsed)
				}
			}
		}
	}
}

// TestMultiNodeSharing: the node axis composes with sockets — a
// two-node dual-socket fusion exposes four packages, and cyclic
// placement spreads across all of them.
func TestMultiNodeSharing(t *testing.T) {
	base, err := machine.SG2042x2().WithNodes(2)
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(base, mustMap(t, base, CyclicNUMA, 16))
	if !equalInts(s.ThreadsPerSocket, []int{4, 4, 4, 4}) {
		t.Errorf("ThreadsPerSocket = %v", s.ThreadsPerSocket)
	}
	if s.NodesUsed != 2 || s.MaxPerNode != 8 || s.SocketsUsed != 4 || s.MaxPerSocket != 4 {
		t.Errorf("sharing = %+v", s)
	}
	// Block keeps 16 threads on the first socket of the first node.
	bl := Analyze(base, mustMap(t, base, Block, 16))
	if bl.NodesUsed != 1 || bl.SocketsUsed != 1 || bl.MaxPerNode != 16 {
		t.Errorf("block sharing = %+v", bl)
	}
}
