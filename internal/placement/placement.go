// Package placement implements the three thread-to-core mapping policies
// Section 3.2 of the paper studies on the SG2042:
//
//   - Block: threads map contiguously to core ids (thread 0 -> core 0,
//     thread 1 -> core 1, ...), the policy behind Table 1.
//   - CyclicNUMA: threads cycle round the NUMA regions and are then
//     allocated contiguously within a region ("four threads are mapped
//     to cores 0, 8, 32, and 40 ... eight threads are placed onto cores
//     0, 8, 32, 40, 1, 9, 33, and 41"), the policy behind Table 2.
//   - ClusterCyclic: threads cycle round NUMA regions and, inside each
//     region, cycle across the four-core L2 clusters ("8 threads would
//     be mapped to cores 0, 8, 32, 40, 16, 24, 48, and 56"), the policy
//     behind Table 3.
//
// The package also derives the sharing structure a mapping induces — how
// many threads land in each NUMA region and each L2 cluster — which is
// what the performance model's contention terms consume.
package placement

import (
	"fmt"
	"sort"

	"repro/internal/machine"
)

// Policy selects a thread-to-core mapping strategy.
type Policy int

const (
	// Block allocates threads to contiguous core ids.
	Block Policy = iota
	// CyclicNUMA cycles threads across NUMA regions, contiguous within
	// a region.
	CyclicNUMA
	// ClusterCyclic cycles across NUMA regions and across the clusters
	// inside each region.
	ClusterCyclic
)

var policyNames = map[Policy]string{
	Block:         "block",
	CyclicNUMA:    "cyclic",
	ClusterCyclic: "cluster",
}

func (p Policy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// Policies lists all policies in the order the paper presents them.
var Policies = []Policy{Block, CyclicNUMA, ClusterCyclic}

// Map returns the core id each thread binds to (index = thread id).
// It errors if threads exceeds the machine's physical cores, mirroring
// the paper's practice of never oversubscribing ("we only execute on
// physical cores").
func Map(m *machine.Machine, p Policy, threads int) ([]int, error) {
	if threads < 1 {
		return nil, fmt.Errorf("placement: %d threads", threads)
	}
	if threads > m.Cores {
		return nil, fmt.Errorf("placement: %d threads exceed %d physical cores of %s",
			threads, m.Cores, m.Label)
	}
	switch p {
	case Block:
		return blockMap(threads), nil
	case CyclicNUMA:
		return cyclicMap(m, threads, false), nil
	case ClusterCyclic:
		return cyclicMap(m, threads, true), nil
	}
	return nil, fmt.Errorf("placement: unknown policy %d", int(p))
}

func blockMap(threads int) []int {
	cores := make([]int, threads)
	for i := range cores {
		cores[i] = i
	}
	return cores
}

// regionOrder returns, for each NUMA region, the region's cores in the
// order the policy consumes them.
func regionOrder(m *machine.Machine, clusterAware bool) [][]int {
	orders := make([][]int, m.NUMARegions)
	for r := 0; r < m.NUMARegions; r++ {
		cores := m.CoresInNUMA(r)
		if !clusterAware {
			orders[r] = cores // ascending core id = contiguous in region
			continue
		}
		// Cluster-aware: visit the region's clusters round-robin,
		// interleaving the region's id-halves so consecutive visits hit
		// distinct L2s as far apart as possible. On the SG2042 a region
		// holds cores [8k..8k+7, 8k+16..8k+23]; interleaving the halves
		// yields cluster first-cores 0, 16, 4, 20 for region 0 —
		// reproducing the paper's example sequence.
		clusters := m.ClustersInNUMA(r)
		order := interleaveHalves(clusters)
		byCluster := make(map[int][]int)
		for _, c := range cores {
			cl := m.ClusterOf(c)
			byCluster[cl] = append(byCluster[cl], c)
		}
		var seq []int
		for depth := 0; len(seq) < len(cores); depth++ {
			for _, cl := range order {
				cs := byCluster[cl]
				if depth < len(cs) {
					seq = append(seq, cs[depth])
				}
			}
		}
		orders[r] = seq
	}
	return orders
}

// interleaveHalves reorders [a,b,c,d] to [a,c,b,d]: first element of each
// half alternating. For odd lengths the first half is the longer one.
func interleaveHalves(xs []int) []int {
	n := len(xs)
	if n <= 2 {
		return xs
	}
	h := (n + 1) / 2
	out := make([]int, 0, n)
	for i := 0; i < h; i++ {
		out = append(out, xs[i])
		if h+i < n {
			out = append(out, xs[h+i])
		}
	}
	return out
}

func cyclicMap(m *machine.Machine, threads int, clusterAware bool) []int {
	orders := regionOrder(m, clusterAware)
	next := make([]int, m.NUMARegions) // per-region cursor
	cores := make([]int, 0, threads)
	for len(cores) < threads {
		progressed := false
		for r := 0; r < m.NUMARegions && len(cores) < threads; r++ {
			if next[r] < len(orders[r]) {
				cores = append(cores, orders[r][next[r]])
				next[r]++
				progressed = true
			}
		}
		if !progressed {
			break // all cores consumed (threads <= m.Cores guarantees fill)
		}
	}
	return cores
}

// Sharing summarises the contention structure a mapping induces.
type Sharing struct {
	// ThreadsPerNUMA[r] is the number of threads bound to NUMA region r.
	ThreadsPerNUMA []int
	// ThreadsPerCluster maps cluster id -> thread count for clusters
	// with at least one thread.
	ThreadsPerCluster map[int]int
	// MaxPerNUMA and MaxPerCluster are the worst-case sharer counts;
	// the bandwidth bottleneck follows the most crowded domain.
	MaxPerNUMA    int
	MaxPerCluster int
	// NUMARegionsUsed and ClustersUsed count the domains with >=1 thread.
	NUMARegionsUsed int
	ClustersUsed    int
	// ThreadsPerSocket[p] is the number of threads bound to CPU package
	// p (packages = nodes x sockets, contiguous core-id blocks). On a
	// single-socket single-node machine it has one entry equal to the
	// thread count.
	ThreadsPerSocket []int
	// MaxPerSocket and MaxPerNode are the worst-case sharer counts of
	// the package and node domains — what per-socket caches and
	// per-node memory systems are divided by.
	MaxPerSocket int
	MaxPerNode   int
	// SocketsUsed and NodesUsed count packages and nodes with >=1
	// thread; a mapping that crosses either boundary pays the
	// corresponding link.
	SocketsUsed int
	NodesUsed   int
	// MaxRegionsPerSocket is the largest number of NUMA regions in use
	// inside any one package (== NUMARegionsUsed on a single-package
	// machine) — the per-socket analogue the aggregate-bandwidth
	// scaling consumes.
	MaxRegionsPerSocket int
}

// Analyze derives the Sharing of a thread->core mapping.
func Analyze(m *machine.Machine, cores []int) Sharing {
	s := Sharing{
		ThreadsPerNUMA:    make([]int, m.NUMARegions),
		ThreadsPerCluster: make(map[int]int),
		ThreadsPerSocket:  make([]int, m.Packages()),
	}
	threadsPerNode := make([]int, m.NodeCount())
	for _, c := range cores {
		s.ThreadsPerNUMA[m.NUMARegionOf[c]]++
		s.ThreadsPerCluster[m.ClusterOf(c)]++
		s.ThreadsPerSocket[m.SocketOf(c)]++
		threadsPerNode[m.NodeOf(c)]++
	}
	rp := m.RegionsPerSocket()
	regionsUsed := make([]int, m.Packages())
	for r, n := range s.ThreadsPerNUMA {
		if n > 0 {
			s.NUMARegionsUsed++
			regionsUsed[r/rp]++
		}
		if n > s.MaxPerNUMA {
			s.MaxPerNUMA = n
		}
	}
	for _, n := range s.ThreadsPerCluster {
		if n > s.MaxPerCluster {
			s.MaxPerCluster = n
		}
	}
	s.ClustersUsed = len(s.ThreadsPerCluster)
	for _, n := range s.ThreadsPerSocket {
		if n > 0 {
			s.SocketsUsed++
		}
		if n > s.MaxPerSocket {
			s.MaxPerSocket = n
		}
	}
	for _, n := range threadsPerNode {
		if n > 0 {
			s.NodesUsed++
		}
		if n > s.MaxPerNode {
			s.MaxPerNode = n
		}
	}
	for _, n := range regionsUsed {
		if n > s.MaxRegionsPerSocket {
			s.MaxRegionsPerSocket = n
		}
	}
	return s
}

// Describe renders a mapping as the paper writes them: "cores 0, 8, 32, 40".
func Describe(cores []int) string {
	out := "cores "
	for i, c := range cores {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprint(c)
	}
	return out
}

// Unique reports whether no core is used twice (every valid mapping on
// physical cores must be a partial permutation).
func Unique(cores []int) bool {
	seen := make(map[int]bool, len(cores))
	for _, c := range cores {
		if seen[c] {
			return false
		}
		seen[c] = true
	}
	return true
}

// SortedCopy returns the mapping's cores in ascending order (test helper
// for set comparisons).
func SortedCopy(cores []int) []int {
	out := append([]int(nil), cores...)
	sort.Ints(out)
	return out
}
