// Package trace generates synthetic memory-address streams for the
// access patterns the kernel IR declares (internal/ir). The streams
// drive the cache simulator (internal/cachesim) so the analytic
// working-set model in internal/perfmodel can be validated against an
// executable model, and so the cache-geometry ablation benchmark has
// realistic inputs.
package trace

import (
	"fmt"
	"math/rand"

	"repro/internal/ir"
)

// Ref is one memory reference in a trace.
type Ref struct {
	Addr  uint64
	Write bool
}

// Emit is the callback traces are streamed through (avoids materialising
// multi-million-entry slices).
type Emit func(Ref)

// Array reserves a disjoint address range for one logical array.
type Array struct {
	Base     uint64
	ElemSize int
}

// Addr returns the address of element i.
func (a Array) Addr(i int) uint64 { return a.Base + uint64(i*a.ElemSize) }

// Layout allocates disjoint arrays, separated and aligned to 4KB pages.
type Layout struct {
	next uint64
}

// NewLayout starts allocating at a non-zero base (so address 0 is never
// valid, which catches uninitialised refs in tests).
func NewLayout() *Layout { return &Layout{next: 1 << 20} }

// Alloc reserves elems*elemSize bytes and returns the Array.
func (l *Layout) Alloc(elems, elemSize int) Array {
	const page = 4096
	a := Array{Base: l.next, ElemSize: elemSize}
	size := uint64(elems * elemSize)
	l.next += (size + page - 1) / page * page
	l.next += page // guard page between arrays
	return a
}

// Stream emits a unit-stride walk over n elements of each array in
// turn-by-iteration order: for i { for each array: touch a[i] }, the
// pattern of TRIAD-like kernels. writes marks which arrays are stored.
func Stream(n int, arrays []Array, writes []bool, emit Emit) error {
	if len(writes) != len(arrays) {
		return fmt.Errorf("trace: %d arrays but %d write flags", len(arrays), len(writes))
	}
	for i := 0; i < n; i++ {
		for k, a := range arrays {
			emit(Ref{Addr: a.Addr(i), Write: writes[k]})
		}
	}
	return nil
}

// Strided emits a[i*stride] for i in [0,n).
func Strided(n, stride int, a Array, write bool, emit Emit) {
	for i := 0; i < n; i++ {
		emit(Ref{Addr: a.Addr(i * stride), Write: write})
	}
}

// Stencil1D emits the 3-point Jacobi pattern: read a[i-1],a[i],a[i+1],
// write b[i], for i in [1,n-1).
func Stencil1D(n int, a, b Array, emit Emit) {
	for i := 1; i < n-1; i++ {
		emit(Ref{Addr: a.Addr(i - 1)})
		emit(Ref{Addr: a.Addr(i)})
		emit(Ref{Addr: a.Addr(i + 1)})
		emit(Ref{Addr: b.Addr(i), Write: true})
	}
}

// Stencil2D emits the 5-point Jacobi pattern over an n×n grid stored
// row-major in a, writing b.
func Stencil2D(n int, a, b Array, emit Emit) {
	idx := func(i, j int) int { return i*n + j }
	for i := 1; i < n-1; i++ {
		for j := 1; j < n-1; j++ {
			emit(Ref{Addr: a.Addr(idx(i-1, j))})
			emit(Ref{Addr: a.Addr(idx(i+1, j))})
			emit(Ref{Addr: a.Addr(idx(i, j-1))})
			emit(Ref{Addr: a.Addr(idx(i, j+1))})
			emit(Ref{Addr: a.Addr(idx(i, j))})
			emit(Ref{Addr: b.Addr(idx(i, j)), Write: true})
		}
	}
}

// Transpose emits the column-major walk over an n×n row-major matrix:
// the worst-case strided pattern (MVT, matrix transposition).
func Transpose(n int, a Array, write bool, emit Emit) {
	for j := 0; j < n; j++ {
		for i := 0; i < n; i++ {
			emit(Ref{Addr: a.Addr(i*n + j), Write: write})
		}
	}
}

// Gather emits x[idx[i]] loads with a seeded random index array
// (INDEXLIST-style indirection). The idx array itself is also read.
func Gather(n int, seed int64, idx, x Array, emit Emit) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		emit(Ref{Addr: idx.Addr(i)})
		emit(Ref{Addr: x.Addr(rng.Intn(n))})
	}
}

// RandomAccess emits n references uniformly over an array of elems
// elements (sorting-like behaviour).
func RandomAccess(n, elems int, seed int64, a Array, writeFrac float64, emit Emit) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		emit(Ref{Addr: a.Addr(rng.Intn(elems)), Write: rng.Float64() < writeFrac})
	}
}

// MatMul emits the classic triple-loop ijk GEMM access pattern over
// n×n row-major matrices C += A*B (reads A row-wise, B column-wise,
// updates C).
func MatMul(n int, a, b, c Array, emit Emit) {
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			emit(Ref{Addr: c.Addr(i*n + j)})
			for k := 0; k < n; k++ {
				emit(Ref{Addr: a.Addr(i*n + k)})
				emit(Ref{Addr: b.Addr(k*n + j)})
			}
			emit(Ref{Addr: c.Addr(i*n + j), Write: true})
		}
	}
}

// FromPattern renders a generic trace for an ir.Pattern: the bridge the
// validation tests use to drive the cache simulator from a kernel's IR.
// n is the element count per array, elemSize the element width.
func FromPattern(p ir.Pattern, n, elemSize, stride int, seed int64, emit Emit) error {
	l := NewLayout()
	switch p {
	case ir.Unit:
		a, b := l.Alloc(n, elemSize), l.Alloc(n, elemSize)
		return Stream(n, []Array{a, b}, []bool{false, true}, emit)
	case ir.Strided:
		if stride < 1 {
			return fmt.Errorf("trace: strided pattern needs stride >= 1")
		}
		a := l.Alloc(n*stride, elemSize)
		Strided(n, stride, a, false, emit)
		return nil
	case ir.Stencil:
		a, b := l.Alloc(n, elemSize), l.Alloc(n, elemSize)
		Stencil1D(n, a, b, emit)
		return nil
	case ir.Transpose:
		side := isqrt(n)
		a := l.Alloc(side*side, elemSize)
		Transpose(side, a, false, emit)
		return nil
	case ir.Indirect:
		idx, x := l.Alloc(n, 8), l.Alloc(n, elemSize)
		Gather(n, seed, idx, x, emit)
		return nil
	case ir.Random:
		a := l.Alloc(n, elemSize)
		RandomAccess(n, n, seed, a, 0.25, emit)
		return nil
	case ir.Broadcast:
		a := l.Alloc(8, elemSize)
		for i := 0; i < n; i++ {
			emit(Ref{Addr: a.Addr(i % 8)})
		}
		return nil
	}
	return fmt.Errorf("trace: unsupported pattern %v", p)
}

func isqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}
