package trace

import (
	"testing"
	"testing/quick"

	"repro/internal/ir"
)

func collect(f func(Emit)) []Ref {
	var refs []Ref
	f(func(r Ref) { refs = append(refs, r) })
	return refs
}

func TestLayoutDisjoint(t *testing.T) {
	l := NewLayout()
	a := l.Alloc(100, 8)
	b := l.Alloc(100, 8)
	if a.Addr(99)+8 > b.Base {
		t.Errorf("arrays overlap: a ends %#x, b starts %#x", a.Addr(99)+8, b.Base)
	}
	if a.Base == 0 {
		t.Error("array at address 0")
	}
}

func TestStream(t *testing.T) {
	l := NewLayout()
	a, b := l.Alloc(4, 8), l.Alloc(4, 8)
	refs := collect(func(e Emit) {
		if err := Stream(4, []Array{a, b}, []bool{false, true}, e); err != nil {
			t.Fatal(err)
		}
	})
	if len(refs) != 8 {
		t.Fatalf("got %d refs, want 8", len(refs))
	}
	// Interleaved per iteration: a[0] read, b[0] write, a[1] read, ...
	if refs[0].Addr != a.Addr(0) || refs[0].Write {
		t.Errorf("ref 0 = %+v", refs[0])
	}
	if refs[1].Addr != b.Addr(0) || !refs[1].Write {
		t.Errorf("ref 1 = %+v", refs[1])
	}
	if refs[2].Addr != a.Addr(1) {
		t.Errorf("ref 2 = %+v", refs[2])
	}
	// Mismatched write flags error.
	if err := Stream(4, []Array{a}, []bool{false, true}, func(Ref) {}); err == nil {
		t.Error("mismatched write flags accepted")
	}
}

func TestStrided(t *testing.T) {
	l := NewLayout()
	a := l.Alloc(100, 4)
	refs := collect(func(e Emit) { Strided(5, 4, a, false, e) })
	for i, r := range refs {
		want := a.Addr(i * 4)
		if r.Addr != want {
			t.Errorf("ref %d at %#x, want %#x", i, r.Addr, want)
		}
	}
}

func TestStencil1DRefCount(t *testing.T) {
	l := NewLayout()
	a, b := l.Alloc(10, 8), l.Alloc(10, 8)
	refs := collect(func(e Emit) { Stencil1D(10, a, b, e) })
	// 8 interior points × 4 refs.
	if len(refs) != 32 {
		t.Fatalf("got %d refs, want 32", len(refs))
	}
	writes := 0
	for _, r := range refs {
		if r.Write {
			writes++
		}
	}
	if writes != 8 {
		t.Errorf("got %d writes, want 8", writes)
	}
}

func TestStencil2DRefCount(t *testing.T) {
	l := NewLayout()
	a, b := l.Alloc(64, 8), l.Alloc(64, 8)
	refs := collect(func(e Emit) { Stencil2D(8, a, b, e) })
	// 6×6 interior × 6 refs.
	if len(refs) != 216 {
		t.Fatalf("got %d refs, want 216", len(refs))
	}
}

func TestTransposeStride(t *testing.T) {
	l := NewLayout()
	a := l.Alloc(16, 8)
	refs := collect(func(e Emit) { Transpose(4, a, false, e) })
	if len(refs) != 16 {
		t.Fatalf("got %d refs", len(refs))
	}
	// Consecutive refs within a column are n elements apart.
	if refs[1].Addr-refs[0].Addr != 4*8 {
		t.Errorf("column stride = %d bytes, want 32", refs[1].Addr-refs[0].Addr)
	}
}

func TestGatherDeterministic(t *testing.T) {
	l := NewLayout()
	idx, x := l.Alloc(50, 8), l.Alloc(50, 8)
	a := collect(func(e Emit) { Gather(50, 1, idx, x, e) })
	b := collect(func(e Emit) { Gather(50, 1, idx, x, e) })
	if len(a) != len(b) || len(a) != 100 {
		t.Fatalf("lengths %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("gather trace not deterministic for same seed")
		}
	}
	c := collect(func(e Emit) { Gather(50, 2, idx, x, e) })
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestMatMulRefCount(t *testing.T) {
	l := NewLayout()
	a, b, c := l.Alloc(16, 8), l.Alloc(16, 8), l.Alloc(16, 8)
	refs := collect(func(e Emit) { MatMul(4, a, b, c, e) })
	// n^2 * (2 + 2n) refs: C read+write plus n (A,B) pairs.
	want := 16 * (2 + 8)
	if len(refs) != want {
		t.Fatalf("got %d refs, want %d", len(refs), want)
	}
}

func TestFromPatternAllPatterns(t *testing.T) {
	for _, p := range []ir.Pattern{
		ir.Unit, ir.Strided, ir.Stencil, ir.Transpose,
		ir.Indirect, ir.Random, ir.Broadcast,
	} {
		n := 0
		err := FromPattern(p, 256, 8, 4, 1, func(Ref) { n++ })
		if err != nil {
			t.Errorf("%v: %v", p, err)
			continue
		}
		if n == 0 {
			t.Errorf("%v: empty trace", p)
		}
	}
	if err := FromPattern(ir.Strided, 16, 8, 0, 1, func(Ref) {}); err == nil {
		t.Error("strided with stride 0 accepted")
	}
}

func TestFromPatternAddressesNonZero(t *testing.T) {
	// Property: every generated address is non-zero (layout guarantees)
	// for any modest n.
	f := func(raw uint8) bool {
		n := int(raw)%500 + 1
		ok := true
		FromPattern(ir.Unit, n, 8, 1, 1, func(r Ref) {
			if r.Addr == 0 {
				ok = false
			}
		})
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIsqrt(t *testing.T) {
	cases := map[int]int{1: 1, 3: 1, 4: 2, 15: 3, 16: 4, 17: 4, 100: 10}
	for n, want := range cases {
		if got := isqrt(n); got != want {
			t.Errorf("isqrt(%d) = %d, want %d", n, got, want)
		}
	}
}
