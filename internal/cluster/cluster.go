// Package cluster models distributed-memory execution across multiple
// SG2042 (or x86) nodes — the paper's stated further work: "it would be
// instructive to explore distributed memory performance on systems
// built around the SG2042, especially the performance that can be
// delivered using MPI ... clusters of networked machines containing
// this processor".
//
// The model composes the single-node performance model
// (internal/perfmodel) with a network model (per-message latency plus
// bandwidth, the standard alpha-beta cost), and evaluates the two
// archetypal MPI workloads:
//
//   - a 3D halo-exchange stencil (nearest-neighbour communication,
//     surface-to-volume scaling), and
//   - an allreduce-dominated iteration (CG-style dot products,
//     logarithmic tree latency).
//
// Strong and weak scaling sweeps report speedup and parallel efficiency
// in the same form as the paper's Tables 1-3, extended across nodes.
package cluster

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/autovec"
	"repro/internal/machine"
	"repro/internal/perfmodel"
	"repro/internal/placement"
	"repro/internal/prec"
	"repro/internal/stats"
	"repro/internal/suite"
)

// Network is an alpha-beta interconnect model.
type Network struct {
	Name      string
	LatencyNs float64 // per-message latency (alpha)
	BW        float64 // per-link bandwidth, bytes/second (beta)
}

// Standard interconnect presets.
func Ethernet25G() Network {
	return Network{Name: "25GbE RoCE", LatencyNs: 5000, BW: 3.0e9}
}

func InfinibandHDR() Network {
	return Network{Name: "InfiniBand HDR", LatencyNs: 1300, BW: 23.0e9}
}

// MsgTime is the alpha-beta cost of one message of n bytes.
func (nw Network) MsgTime(bytes float64) float64 {
	return nw.LatencyNs*1e-9 + bytes/nw.BW
}

// SocketLink views a multi-socket node's coherent inter-socket link as
// an alpha-beta network, so intra-node cross-socket exchanges cost out
// through the same MsgTime formula as the cluster fabric. It returns
// false on single-socket nodes, which have no such link.
func SocketLink(m *machine.Machine) (Network, bool) {
	if m.SocketCount() <= 1 {
		return Network{}, false
	}
	return Network{Name: "socket link", LatencyNs: m.XSocketLatencyNs, BW: m.XSocketBW}, true
}

// Cluster is a homogeneous set of nodes.
type Cluster struct {
	Node  *machine.Machine
	Net   Network
	Model *perfmodel.Model
	// RanksPerNode is the MPI ranks per node (1 = one rank using all
	// cores with threads, the hybrid MPI+OpenMP setup HPC codes use).
	RanksPerNode int
}

// New builds a cluster of SG2042-style nodes over the network.
func New(node *machine.Machine, net Network) *Cluster {
	return &Cluster{Node: node, Net: net, Model: perfmodel.New(), RanksPerNode: 1}
}

// nodeConfig is the best-practice on-node configuration the paper
// establishes: all threads, cluster-aware cyclic placement.
func (c *Cluster) nodeConfig(p prec.Precision, problemN int) perfmodel.Config {
	threads := c.Node.Cores
	// Section 3.2: 32 threads beat 64 for memory-bound work on a C920
	// socket; on a multi-socket SG2042 board the cap scales with the
	// package count.
	if best := 32 * c.Node.Packages(); threads > best && strings.HasPrefix(c.Node.Label, "SG2042") {
		threads = best
	}
	return perfmodel.Config{
		Machine: c.Node, Threads: threads, Placement: placement.ClusterCyclic,
		Prec: p, Compiler: perfmodel.DefaultCompilerFor(c.Node), Mode: autovec.VLS,
		ProblemN: problemN,
	}
}

// StencilPoint is one row of a stencil scaling sweep.
type StencilPoint struct {
	Nodes      int
	ComputeSec float64
	CommSec    float64
	TotalSec   float64
	Speedup    float64
	Efficiency float64
}

// StrongScaleStencil evaluates strong scaling of the HEAT_3D halo
// stencil over the node counts: a fixed grid of side n is decomposed
// into slabs; each step exchanges two faces of n*n elements with
// neighbours and runs the local stencil.
func (c *Cluster) StrongScaleStencil(n int, p prec.Precision, nodeCounts []int) ([]StencilPoint, error) {
	spec, err := suite.ByName("HEAT_3D")
	if err != nil {
		return nil, err
	}
	var out []StencilPoint
	var t1 float64
	for _, nodes := range nodeCounts {
		if nodes < 1 {
			return nil, fmt.Errorf("cluster: %d nodes", nodes)
		}
		// Local slab: n/nodes planes of n*n (grid side shrinks in one
		// dimension only). The model's Iters/Footprint are cubic in
		// their size parameter, so convert the slab volume to an
		// equivalent cube side.
		localVol := float64(n) * float64(n) * float64(n) / float64(nodes)
		side := int(math.Cbrt(localVol))
		if side < 4 {
			side = 4
		}
		b, err := c.Model.KernelTime(spec, c.nodeConfig(p, side))
		if err != nil {
			return nil, err
		}
		compute := b.PerRep

		faceBytes := float64(n) * float64(n) * float64(p.Bytes())
		comm := 0.0
		if nodes > 1 {
			// Two faces exchanged per step (up and down neighbours),
			// send+receive overlap imperfectly: 2 messages.
			comm = 2 * c.Net.MsgTime(faceBytes)
		}
		// On a multi-socket node the slab is further decomposed across
		// the sockets: the same two-face exchange crosses the coherent
		// link even when the cluster is a single node.
		if link, ok := SocketLink(c.Node); ok {
			comm += 2 * link.MsgTime(faceBytes)
		}
		total := compute + comm
		pt := StencilPoint{Nodes: nodes, ComputeSec: compute, CommSec: comm, TotalSec: total}
		if nodes == nodeCounts[0] {
			t1 = total * float64(nodes) // normalise to 1-node equivalent
		}
		pt.Speedup = t1 / total / float64(nodeCounts[0])
		pt.Efficiency = pt.Speedup / float64(nodes)
		out = append(out, pt)
	}
	return out, nil
}

// WeakScaleStencil keeps the per-node grid fixed at side n and grows
// the global problem with the node count; perfect weak scaling keeps
// the time flat.
func (c *Cluster) WeakScaleStencil(n int, p prec.Precision, nodeCounts []int) ([]StencilPoint, error) {
	spec, err := suite.ByName("HEAT_3D")
	if err != nil {
		return nil, err
	}
	var out []StencilPoint
	var t1 float64
	for _, nodes := range nodeCounts {
		b, err := c.Model.KernelTime(spec, c.nodeConfig(p, n))
		if err != nil {
			return nil, err
		}
		compute := b.PerRep
		faceBytes := float64(n) * float64(n) * float64(p.Bytes())
		comm := 0.0
		if nodes > 1 {
			comm = 2 * c.Net.MsgTime(faceBytes)
		}
		if link, ok := SocketLink(c.Node); ok {
			comm += 2 * link.MsgTime(faceBytes)
		}
		total := compute + comm
		if nodes == nodeCounts[0] {
			t1 = total
		}
		out = append(out, StencilPoint{
			Nodes: nodes, ComputeSec: compute, CommSec: comm, TotalSec: total,
			Speedup:    t1 / total * float64(nodes) / float64(nodeCounts[0]),
			Efficiency: t1 / total,
		})
	}
	return out, nil
}

// AllreducePoint is one row of an allreduce-dominated sweep.
type AllreducePoint struct {
	Nodes      int
	ComputeSec float64
	CommSec    float64
	TotalSec   float64
	Efficiency float64
}

// StrongScaleAllreduce evaluates a CG-style iteration: a DOT kernel of
// n elements decomposed across nodes plus a tree allreduce of one
// scalar per iteration.
func (c *Cluster) StrongScaleAllreduce(n int, p prec.Precision, nodeCounts []int) ([]AllreducePoint, error) {
	spec, err := suite.ByName("DOT")
	if err != nil {
		return nil, err
	}
	var out []AllreducePoint
	var t1 float64
	for _, nodes := range nodeCounts {
		local := n / nodes
		if local < 1 {
			local = 1
		}
		b, err := c.Model.KernelTime(spec, c.nodeConfig(p, local))
		if err != nil {
			return nil, err
		}
		compute := b.PerRep
		comm := 0.0
		if nodes > 1 {
			// Binomial-tree allreduce: 2*log2(nodes) latency-bound hops
			// for an 8-byte scalar.
			hops := 2 * math.Ceil(math.Log2(float64(nodes)))
			comm = hops * c.Net.MsgTime(8)
		}
		// The reduction tree starts inside the node: the sockets combine
		// their partial sums over the coherent link before (and after)
		// anything touches the network.
		if link, ok := SocketLink(c.Node); ok {
			hops := 2 * math.Ceil(math.Log2(float64(c.Node.SocketCount())))
			comm += hops * link.MsgTime(8)
		}
		total := compute + comm
		if nodes == nodeCounts[0] {
			t1 = total * float64(nodes)
		}
		out = append(out, AllreducePoint{
			Nodes: nodes, ComputeSec: compute, CommSec: comm, TotalSec: total,
			Efficiency: t1 / total / float64(nodes) / float64(nodeCounts[0]),
		})
	}
	return out, nil
}

// Text renders a stencil sweep like the paper's scaling tables.
func Text(title string, pts []StencilPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n\n", title)
	fmt.Fprintf(&b, "%-8s %14s %14s %14s %10s %6s\n",
		"Nodes", "compute/step", "comms/step", "total/step", "speedup", "PE")
	for _, pt := range pts {
		fmt.Fprintf(&b, "%-8d %12.3fms %12.3fms %12.3fms %10.2f %6.2f\n",
			pt.Nodes, pt.ComputeSec*1e3, pt.CommSec*1e3, pt.TotalSec*1e3,
			pt.Speedup, pt.Efficiency)
	}
	return b.String()
}

// CommFraction is the communication share of a point's total time.
func (p StencilPoint) CommFraction() float64 {
	if p.TotalSec == 0 {
		return 0
	}
	return p.CommSec / p.TotalSec
}

// Summary aggregates a sweep's parallel efficiency.
func Summary(pts []StencilPoint) stats.Summary {
	effs := make([]float64, len(pts))
	for i, p := range pts {
		effs[i] = p.Efficiency
	}
	return stats.Summarize(effs)
}
