package cluster

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/prec"
)

var nodeCounts = []int{1, 2, 4, 8, 16}

func TestNetworkPresets(t *testing.T) {
	eth, ib := Ethernet25G(), InfinibandHDR()
	if ib.LatencyNs >= eth.LatencyNs {
		t.Error("InfiniBand should have lower latency than Ethernet")
	}
	if ib.BW <= eth.BW {
		t.Error("InfiniBand should have higher bandwidth")
	}
	// Alpha-beta: tiny messages are latency-dominated, big ones BW-bound.
	small := eth.MsgTime(8)
	if small < eth.LatencyNs*1e-9 {
		t.Error("message time below pure latency")
	}
	big := eth.MsgTime(1 << 30)
	if big < float64(1<<30)/eth.BW {
		t.Error("large message faster than bandwidth allows")
	}
}

func TestStrongScalingStencil(t *testing.T) {
	c := New(machine.SG2042(), InfinibandHDR())
	pts, err := c.StrongScaleStencil(512, prec.F64, nodeCounts)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != len(nodeCounts) {
		t.Fatalf("got %d points", len(pts))
	}
	// Compute time must shrink with nodes; total must improve from 1
	// node to some multi-node count.
	if pts[1].ComputeSec >= pts[0].ComputeSec {
		t.Error("2-node compute should be below 1-node")
	}
	if pts[2].Speedup <= 1.5 {
		t.Errorf("4-node speedup %.2f too low", pts[2].Speedup)
	}
	// Speedup grows monotonically with nodes (no scaling collapse in
	// this regime); cache effects may make it superlinear, but bounded.
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup < pts[i-1].Speedup {
			t.Errorf("speedup dropped from %.2f to %.2f at %d nodes",
				pts[i-1].Speedup, pts[i].Speedup, pts[i].Nodes)
		}
	}
	if pts[len(pts)-1].Efficiency > 2.5 {
		t.Errorf("efficiency %.2f implausibly superlinear", pts[len(pts)-1].Efficiency)
	}
	// Communication share grows with node count.
	if pts[len(pts)-1].CommFraction() < pts[1].CommFraction() {
		t.Error("comm fraction should grow in strong scaling")
	}
	if pts[0].CommSec != 0 {
		t.Error("single node has no communication")
	}
}

func TestWeakScalingStencil(t *testing.T) {
	c := New(machine.SG2042(), InfinibandHDR())
	pts, err := c.WeakScaleStencil(128, prec.F64, nodeCounts)
	if err != nil {
		t.Fatal(err)
	}
	// Weak scaling: per-step time grows only by the fixed comm cost.
	if pts[0].TotalSec <= 0 {
		t.Fatal("degenerate base time")
	}
	growth := pts[len(pts)-1].TotalSec / pts[0].TotalSec
	if growth > 1.5 {
		t.Errorf("weak-scaling time grew %.2fx; halo cost should be modest", growth)
	}
	// All multi-node efficiencies within (0, 1].
	for _, p := range pts[1:] {
		if p.Efficiency <= 0 || p.Efficiency > 1.001 {
			t.Errorf("node=%d: weak efficiency %v out of range", p.Nodes, p.Efficiency)
		}
	}
}

func TestNetworkQualityMatters(t *testing.T) {
	// The same sweep over Ethernet must lose more efficiency than over
	// InfiniBand — the paper's point that "networking performance would
	// also be driven by the auxiliaries coupled with the CPU".
	ib := New(machine.SG2042(), InfinibandHDR())
	eth := New(machine.SG2042(), Ethernet25G())
	ibPts, err := ib.StrongScaleStencil(512, prec.F64, nodeCounts)
	if err != nil {
		t.Fatal(err)
	}
	ethPts, err := eth.StrongScaleStencil(512, prec.F64, nodeCounts)
	if err != nil {
		t.Fatal(err)
	}
	last := len(nodeCounts) - 1
	if ethPts[last].Efficiency >= ibPts[last].Efficiency {
		t.Errorf("Ethernet efficiency %.3f should trail InfiniBand %.3f",
			ethPts[last].Efficiency, ibPts[last].Efficiency)
	}
}

func TestAllreduceLatencyBound(t *testing.T) {
	c := New(machine.SG2042(), Ethernet25G())
	pts, err := c.StrongScaleAllreduce(1<<22, prec.F64, nodeCounts)
	if err != nil {
		t.Fatal(err)
	}
	// Allreduce comm grows with log(nodes), so comm at 16 nodes exceeds
	// comm at 2 nodes.
	if pts[len(pts)-1].CommSec <= pts[1].CommSec {
		t.Error("allreduce cost should grow with node count")
	}
	// The communication tax is visible: total exceeds pure compute.
	last := pts[len(pts)-1]
	if last.TotalSec <= last.ComputeSec {
		t.Error("16-node allreduce should pay a communication tax")
	}
}

func TestX86ClusterComparable(t *testing.T) {
	// The model composes with any node type: a Rome cluster must be
	// valid and faster per node than the SG2042 cluster.
	sg := New(machine.SG2042(), InfinibandHDR())
	rome := New(machine.EPYC7742(), InfinibandHDR())
	sgPts, err := sg.StrongScaleStencil(256, prec.F64, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	romePts, err := rome.StrongScaleStencil(256, prec.F64, []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if romePts[0].ComputeSec >= sgPts[0].ComputeSec {
		t.Error("Rome node should out-compute an SG2042 node")
	}
}

func TestRejectsBadNodeCounts(t *testing.T) {
	c := New(machine.SG2042(), InfinibandHDR())
	if _, err := c.StrongScaleStencil(128, prec.F64, []int{0}); err == nil {
		t.Error("zero nodes accepted")
	}
}

func TestTextRender(t *testing.T) {
	c := New(machine.SG2042(), InfinibandHDR())
	pts, err := c.StrongScaleStencil(512, prec.F64, nodeCounts)
	if err != nil {
		t.Fatal(err)
	}
	out := Text("Strong scaling, HEAT_3D, SG2042 + IB", pts)
	for _, want := range []string{"Nodes", "compute/step", "speedup", "16"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	sum := Summary(pts)
	if sum.N != len(pts) {
		t.Error("summary count wrong")
	}
}

// TestDualSocketNodePaysIntraNodeComm: a dual-socket node exchanges
// halo faces over its coherent link even on a single node, and the
// socket link's cost shows up in every point of the sweep; the
// single-socket sweeps are untouched by the topology model.
func TestDualSocketNodePaysIntraNodeComm(t *testing.T) {
	x2 := New(machine.SG2042x2(), InfinibandHDR())
	pts, err := x2.StrongScaleStencil(256, prec.F64, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if pts[0].CommSec <= 0 {
		t.Error("dual-socket single node has zero comm time; the socket link is free")
	}
	single := New(machine.SG2042(), InfinibandHDR())
	sPts, err := single.StrongScaleStencil(256, prec.F64, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sPts[0].CommSec != 0 {
		t.Error("single-socket single node grew a comm term")
	}
	// At equal node counts the dual-socket board's comm per step is
	// strictly higher: network faces plus socket faces.
	for i := range pts {
		if pts[i].CommSec <= sPts[i].CommSec {
			t.Errorf("nodes=%d: dual-socket comm %v <= single-socket %v",
				pts[i].Nodes, pts[i].CommSec, sPts[i].CommSec)
		}
	}

	weak, err := x2.WeakScaleStencil(128, prec.F64, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if weak[0].CommSec <= 0 {
		t.Error("weak scaling on a dual-socket node has no intra-node comm")
	}
	red, err := x2.StrongScaleAllreduce(1 << 20, prec.F64, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if red[0].CommSec <= 0 {
		t.Error("allreduce on a dual-socket node skips the intra-node reduction")
	}
}

func TestSocketLink(t *testing.T) {
	if _, ok := SocketLink(machine.SG2042()); ok {
		t.Error("single-socket machine reports a socket link")
	}
	link, ok := SocketLink(machine.SG2042x2())
	if !ok || link.BW != machine.SG2042x2().XSocketBW || link.LatencyNs != machine.SG2042x2().XSocketLatencyNs {
		t.Errorf("SocketLink = %+v, %v", link, ok)
	}
}
