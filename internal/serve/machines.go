package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro"
)

// machineSummary is one row of GET /v1/machines: enough to pick a
// machine without downloading its full spec.
type machineSummary struct {
	Label       string  `json:"label"`
	Name        string  `json:"name"`
	Cores       int     `json:"cores"`
	ClockGHz    float64 `json:"clock_ghz"`
	NUMARegions int     `json:"numa_regions"`
	VectorISA   string  `json:"vector_isa"`
	VectorBits  int     `json:"vector_bits,omitempty"`
	Sockets     int     `json:"sockets,omitempty"`
	Nodes       int     `json:"nodes,omitempty"`
}

// handleMachines serves GET /v1/machines: every registered machine —
// the paper's seven presets plus the SG2044 and the dual-socket
// SG2042x2 — summarised, in registration order.
func (s *Server) handleMachines(w http.ResponseWriter, r *http.Request) {
	ms := s.reg.Machines()
	out := make([]machineSummary, len(ms))
	for i, m := range ms {
		out[i] = machineSummary{
			Label:       m.Label,
			Name:        m.Name,
			Cores:       m.Cores,
			ClockGHz:    m.ClockHz / 1e9,
			NUMARegions: m.NUMARegions,
			VectorISA:   m.Vector.ISA.Token(),
			VectorBits:  m.Vector.WidthBits,
			Sockets:     m.Sockets,
			Nodes:       m.Nodes,
		}
	}
	writeJSON(w, http.StatusOK, struct {
		Machines []machineSummary `json:"machines"`
	}{out})
}

// handleMachine serves GET /v1/machines/{name}: the machine's full
// JSON spec — the exact form POST /v1/sweep's "spec" field and
// repro.MachineFromJSON accept, so Get-modify-sweep round trips.
func (s *Server) handleMachine(w http.ResponseWriter, r *http.Request) {
	label := r.PathValue("name")
	m, ok := s.reg.Get(label)
	if !ok {
		writeError(w, http.StatusNotFound, s.unknownMachine(label))
		return
	}
	data, err := repro.MachineJSON(m)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) unknownMachine(label string) error {
	return fmt.Errorf("unknown machine %q (want one of %s)",
		label, strings.Join(s.reg.Labels(), ", "))
}

// sweepRequest is the body of POST /v1/sweep. Exactly one of Machine
// (a registry label) and Spec (an inline JSON machine, the
// GET /v1/machines/{name} form) selects the base.
type sweepRequest struct {
	// Machine is the registry label of the base machine ("SG2042").
	Machine string `json:"machine,omitempty"`
	// Spec is an inline custom machine spec.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Axis is the hardware axis to vary: cores, clock, vector, numa,
	// sockets or nodes.
	Axis string `json:"axis"`
	// Values are the axis values (clock in GHz; the rest positive
	// integers).
	Values []float64 `json:"values"`
	// Threads per point, clamped to each variant's cores; 0 = full
	// occupancy.
	Threads int `json:"threads,omitempty"`
	// Prec is "f64" (default) or "f32".
	Prec string `json:"prec,omitempty"`
	// Placement is "block" (default), "cyclic" or "cluster".
	Placement string `json:"placement,omitempty"`
}

// sweepJSON is the JSON envelope of a sweep response; Output carries
// the text or CSV rendering verbatim.
type sweepJSON struct {
	Machine string `json:"machine"`
	Axis    string `json:"axis"`
	Title   string `json:"title"`
	Format  string `json:"format"`
	Output  string `json:"output"`
}

// handleSweep serves POST /v1/sweep: a what-if hardware sweep of one
// axis of a base machine, fanned out over the engine's worker pool.
// The response format is negotiated like the experiment endpoints
// (?format=text|csv|json or the Accept header); text and CSV bodies
// are byte-identical to cmd/sg2042sim -sweep output for the same
// request. Bad parameters are 400s, an unknown machine label is a 404,
// and every point's suite evaluation coalesces on the engine's shared
// cache like any other request.
func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	format, err := negotiate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var req sweepRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}

	var base *repro.Machine
	switch {
	case req.Machine != "" && len(req.Spec) > 0:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf(`pass "machine" (a registry label) or "spec" (an inline machine), not both`))
		return
	case req.Machine != "":
		m, ok := s.reg.Get(req.Machine)
		if !ok {
			writeError(w, http.StatusNotFound, s.unknownMachine(req.Machine))
			return
		}
		base = m
	case len(req.Spec) > 0:
		m, err := repro.MachineFromJSON(req.Spec)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		base = m
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf(`sweep needs a base: pass {"machine": "SG2042", ...} or an inline "spec"`))
		return
	}

	p, err := parsePrec(req.Prec)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	pol, err := parsePlacement(req.Placement)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	spec := repro.SweepSpec{
		Base: base, Axis: repro.SweepAxis(strings.ToLower(strings.TrimSpace(req.Axis))),
		Values: req.Values, Threads: req.Threads, Placement: pol, Prec: p,
	}
	// Validation errors (unknown axis, bad values, underivable variants)
	// are the client's: fail 400 before any evaluation. Errors after
	// this point are the engine's own.
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Sweeps are deterministic in their canonicalized spec, so the
	// rendered body is cacheable like any GET: the key folds in the
	// base machine's full fingerprint (an inline custom spec with one
	// tweaked field must miss) and the exact bit patterns of the axis
	// values.
	ent, err := s.rc.get(sweepRenderKey(spec, format), func() ([]byte, string, error) {
		if format == formatBinary {
			body, err := s.eng.SweepBinary(spec)
			return body, wireContentType, err
		}
		out, err := s.eng.SweepFormat(spec, format == formatCSV)
		if err != nil {
			return nil, "", err
		}
		switch format {
		case formatJSON:
			body, err := marshalJSONBody(sweepJSON{
				Machine: base.Label, Axis: string(spec.Axis), Title: spec.Title(),
				Format: "text", Output: out,
			})
			return body, "application/json", err
		case formatCSV:
			return []byte(out), "text/csv; charset=utf-8", nil
		default:
			return []byte(out), "text/plain; charset=utf-8", nil
		}
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	serveRendered(w, r, ent)
}

// sweepRenderKey canonicalizes a validated sweep spec into a render
// cache key. Float axis values are encoded as exact hex bit patterns,
// so two sweeps hit the same entry only when every evaluated input is
// identical.
func sweepRenderKey(spec repro.SweepSpec, f format) renderKey {
	var v strings.Builder
	fmt.Fprintf(&v, "fp=%016x axis=%s threads=%d pol=%v prec=%v vals=",
		spec.Base.Fingerprint(), spec.Axis, spec.Threads, spec.Placement, spec.Prec)
	for _, x := range spec.Values {
		fmt.Fprintf(&v, "%x,", x)
	}
	return renderKey{kind: "sweep", name: spec.Base.Label, variant: v.String(), format: f}
}

// parsePlacement maps a placement token onto a policy; empty means the
// sweep default, block.
func parsePlacement(s string) (repro.Policy, error) {
	return repro.ParsePlacement(s)
}
