package serve

// Rendered-response cache. The engine is deterministic — the
// determinism contract (docs/ARCHITECTURE.md) guarantees that one
// (experiment|report|sweep, machine, format) tuple always renders to
// the same bytes — so the server can cache entire response bodies, not
// just the suite evaluations behind them. Each entry stores the
// rendered body, a precomputed strong ETag over it, and (for bodies
// worth compressing) a gzip form built once with a pooled writer.
// Repeat GETs cost a map lookup and one write; conditional requests
// (If-None-Match) cost a 304 with no body at all. Entries are filled
// under a per-key sync.Once, so concurrent first requests coalesce
// exactly like the engine's suite cache. docs/PERFORMANCE.md documents
// the semantics.

import (
	"bytes"
	"compress/gzip"
	"crypto/sha256"
	"encoding/hex"
	"net/http"
	"strconv"
	"strings"
	"sync"
)

// renderKey identifies one cacheable rendering.
type renderKey struct {
	// kind is the endpoint family: "experiment", "roofline", "cluster"
	// or "sweep".
	kind string
	// name is the experiment name or machine label, verbatim (it can
	// appear in the rendered body, so no canonicalization here beyond
	// what the handler itself does).
	name string
	// variant canonicalizes the remaining parameters (precision,
	// network, grid, node list, sweep axis/values/threads/placement and
	// the base machine's fingerprint).
	variant string
	format  format
}

// renderEntry is one immutable cached rendering.
type renderEntry struct {
	body  []byte
	ctype string
	etag  string // strong ETag over body
	// gzipped/etagGzip are set when compression pays; the gzip
	// representation gets its own ETag ("...-gzip"), nginx-style, so
	// each representation revalidates against the exact bytes it serves.
	gzipped  []byte
	etagGzip string
}

type renderSlot struct {
	once sync.Once
	ent  *renderEntry
	err  error
}

// maxRenderEntries bounds the cache across all shards. The fixed key
// space (experiments x formats, reports per machine and parameter set)
// is far below it; what it defends against is the client-controlled key
// spaces (sweep specs, cluster grid/node parameters) — an inline custom
// machine spec makes every tweaked request a distinct key, and without
// a bound a long-running daemon would retain every rendered body it
// ever produced. At the cap an arbitrary entry is evicted for each new
// one, so caching and request coalescing keep working under churn (an
// evicted hot entry just re-renders on its next request) while memory
// stays bounded.
const maxRenderEntries = 1024

// renderShards is the shard count — a power of two so shard selection
// is a mask, sized like the suite cache's (internal/core) so neither
// lock is the hot one under concurrent load.
const renderShards = 16

// maxShardEntries is the per-shard cap; the shard-local bound keeps the
// global maxRenderEntries invariant without any cross-shard counting.
const maxShardEntries = maxRenderEntries / renderShards

// renderCache memoizes rendered responses for one Server, sharded
// across renderShards mutexes keyed by an FNV-1a hash of the render
// key, so concurrent requests for different renderings no longer
// serialize on one lock. hits/misses count successful responses only:
// served from cache vs rendered.
type renderCache struct {
	shards [renderShards]renderShard
}

type renderShard struct {
	mu      sync.Mutex
	entries map[renderKey]*renderSlot
	hits    uint64
	misses  uint64
}

func newRenderCache() *renderCache { return &renderCache{} }

// shardFor hashes the key's fields with FNV-1a. Every field
// participates: kind and format have few values, so name and variant
// carry the entropy for the client-controlled key spaces.
func (c *renderCache) shardFor(k renderKey) *renderShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
		h ^= 0xff // field separator: ("ab","c") must not collide with ("a","bc")
		h *= prime64
	}
	mix(k.kind)
	mix(k.name)
	mix(k.variant)
	h ^= uint64(k.format)
	h *= prime64
	return &c.shards[h&(renderShards-1)]
}

// get returns the cached rendering for k, filling it exactly once via
// fill on first request. Concurrent first requests share one fill. A
// fill error is returned to every waiter but not cached: the slot is
// removed so a later request retries (and errors count toward neither
// hits nor misses).
func (c *renderCache) get(k renderKey, fill func() (body []byte, ctype string, err error)) (*renderEntry, error) {
	sh := c.shardFor(k)
	sh.mu.Lock()
	if sh.entries == nil {
		sh.entries = make(map[renderKey]*renderSlot)
	}
	slot, cached := sh.entries[k]
	if slot == nil {
		if len(sh.entries) >= maxShardEntries {
			// Evict an arbitrary entry (map iteration order): a slot
			// another request still holds completes its fill and
			// serves normally, it just won't be found again.
			for victim := range sh.entries {
				delete(sh.entries, victim)
				break
			}
		}
		slot = &renderSlot{}
		sh.entries[k] = slot
	}
	sh.mu.Unlock()

	slot.once.Do(func() {
		body, ctype, err := fill()
		if err != nil {
			slot.err = err
			sh.mu.Lock()
			if sh.entries[k] == slot {
				delete(sh.entries, k)
			}
			sh.mu.Unlock()
			return
		}
		slot.ent = newRenderEntry(body, ctype)
	})
	if slot.err != nil {
		return nil, slot.err
	}
	sh.mu.Lock()
	if cached {
		sh.hits++
	} else {
		sh.misses++
	}
	sh.mu.Unlock()
	return slot.ent, nil
}

// stats reports lookups served from the cache vs renders computed,
// summed across shards.
func (c *renderCache) stats() (hits, misses uint64) {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		hits += sh.hits
		misses += sh.misses
		sh.mu.Unlock()
	}
	return hits, misses
}

// size reports the live entry count across shards (tests use it to
// check the bound).
func (c *renderCache) size() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// gzipMinSize is the smallest body worth compressing: below this the
// gzip header/trailer overhead eats the gain and tiny responses are
// cheap to send anyway.
const gzipMinSize = 512

// gzipPool recycles gzip writers across cache fills — each Reset
// reuses the writer's internal deflate state instead of reallocating
// its ~1.4MB of window buffers.
var gzipPool = sync.Pool{
	New: func() any {
		w, _ := gzip.NewWriterLevel(nil, gzip.BestSpeed)
		return w
	},
}

func newRenderEntry(body []byte, ctype string) *renderEntry {
	sum := sha256.Sum256(body)
	tag := hex.EncodeToString(sum[:16])
	e := &renderEntry{
		body:  body,
		ctype: ctype,
		etag:  `"` + tag + `"`,
	}
	if len(body) >= gzipMinSize {
		var buf bytes.Buffer
		zw := gzipPool.Get().(*gzip.Writer)
		zw.Reset(&buf)
		zw.Write(body)
		if err := zw.Close(); err == nil && buf.Len() < len(body) {
			e.gzipped = buf.Bytes()
			e.etagGzip = `"` + tag + `-gzip"`
		}
		gzipPool.Put(zw)
	}
	return e
}

// serveRendered writes a cached entry: a 304 when the client already
// holds the representation, the stored gzip bytes when the client
// accepts them, the identity body otherwise.
func serveRendered(w http.ResponseWriter, r *http.Request, ent *renderEntry) {
	h := w.Header()
	// These responses are negotiated from request headers (the body
	// format from Accept, the encoding from Accept-Encoding), and the
	// ETag makes them attractive to downstream caches — Vary tells
	// those caches which headers select the representation.
	h.Add("Vary", "Accept")
	h.Add("Vary", "Accept-Encoding")
	body, etag, enc := ent.body, ent.etag, ""
	if ent.gzipped != nil && acceptsGzip(r) {
		body, etag, enc = ent.gzipped, ent.etagGzip, "gzip"
	}
	h.Set("ETag", etag)
	// RFC 9110 defines the 304 answer to If-None-Match for GET/HEAD
	// only; on other methods (the sweep POST) the header is ignored
	// and the full body served — the ETag still lets clients detect
	// an unchanged result.
	if r.Method == http.MethodGet || r.Method == http.MethodHead {
		if etagMatches(r.Header.Get("If-None-Match"), etag) {
			w.WriteHeader(http.StatusNotModified)
			return
		}
	}
	h.Set("Content-Type", ent.ctype)
	if enc != "" {
		h.Set("Content-Encoding", enc)
	}
	h.Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// etagMatches implements If-None-Match for a strong ETag: a list of
// entity tags (or "*"), compared weakly — a W/ prefix on the client's
// copy still matches, as RFC 9110 prescribes for If-None-Match.
func etagMatches(header, etag string) bool {
	if header == "" {
		return false
	}
	for _, c := range strings.Split(header, ",") {
		c = strings.TrimSpace(c)
		if c == "*" || c == etag || strings.TrimPrefix(c, "W/") == etag {
			return true
		}
	}
	return false
}

// acceptsGzip reports whether the request's Accept-Encoding admits
// gzip (an explicit q=0 opts out).
func acceptsGzip(r *http.Request) bool {
	for _, part := range strings.Split(r.Header.Get("Accept-Encoding"), ",") {
		coding, q, hasQ := strings.Cut(strings.TrimSpace(part), ";")
		if !strings.EqualFold(strings.TrimSpace(coding), "gzip") {
			continue
		}
		if hasQ {
			q = strings.TrimPrefix(strings.TrimSpace(q), "q=")
			if v, err := strconv.ParseFloat(q, 64); err == nil && v == 0 {
				return false
			}
		}
		return true
	}
	return false
}
