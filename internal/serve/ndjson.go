package serve

// Hand-rolled NDJSON point encoding. The streaming campaign surface
// emits one JSON line per grid point; encoding/json costs a
// reflection walk, an interface box per field, and map-ordered
// bookkeeping for every line. A campaign at the raised point cap emits
// thousands of lines per request, so the point line — a small, fixed
// struct — is encoded by appending into a pooled buffer instead:
// zero allocations per line beyond the buffer itself.
//
// Byte compatibility is a hard contract, not an aspiration: the
// rendered stream is cached and replayed, diffed by the determinism
// gate, and compared across the local and fabric tiers, and the
// pre-planner binary produced encoding/json bytes. Every encoding
// decision below — the float format switch at 1e-6/1e21 with the
// exponent fixup, HTML escaping of <, >, and &, the �
// replacement for invalid UTF-8, the U+2028/U+2029 escapes — is
// replicated from encoding/json, and ndjson_test.go pins the bytes
// against json.Encoder across the corner cases.

import (
	"fmt"
	"math"
	"strconv"
	"sync"
	"unicode/utf8"

	"repro"
)

// lineBufPool recycles NDJSON line buffers across points and requests.
var lineBufPool = sync.Pool{
	New: func() any { b := make([]byte, 0, 2048); return &b },
}

// ndjsonClasses caches the paper's class order once: repro.Classes()
// returns a defensive copy per call, which would be one allocation per
// point line.
var ndjsonClasses = repro.Classes()

const jsonHex = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal, replicating
// encoding/json's escaping with EscapeHTML enabled (the Encoder
// default): ", \, controls (with the \n \r \t short forms), <, >, &,
// invalid UTF-8 as the \ufffd escape, and U+2028/U+2029.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&' {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\b':
				b = append(b, '\\', 'b')
			case '\f':
				b = append(b, '\\', 'f')
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				// Other control characters, plus <, >, and & under HTML
				// escaping.
				b = append(b, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xF])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', jsonHex[c&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendJSONFloat appends f exactly as encoding/json renders a
// float64: shortest 'f' form, switching to 'e' outside [1e-6, 1e21)
// with the exponent's leading zero trimmed. Non-finite values error
// like encoding/json does.
func appendJSONFloat(b []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, fmt.Errorf("json: unsupported value: %s",
			strconv.FormatFloat(f, 'g', -1, 64))
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-09" to "e-9", as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}

// appendCampaignPoint appends one NDJSON point line (newline included)
// for p — byte-identical to
// json.Encoder.Encode(campaignPointLine(p)).
func appendCampaignPoint(b []byte, p repro.CampaignPoint) ([]byte, error) {
	var err error
	b = append(b, `{"point":`...)
	b = strconv.AppendInt(b, int64(p.Index), 10)
	b = append(b, `,"base":`...)
	b = appendJSONString(b, p.Base)
	b = append(b, `,"machine":`...)
	b = appendJSONString(b, p.Machine)
	b = append(b, `,"threads":`...)
	b = strconv.AppendInt(b, int64(p.Threads), 10)
	b = append(b, `,"placement":`...)
	b = appendJSONString(b, p.Placement.String())
	b = append(b, `,"prec":`...)
	b = appendJSONString(b, p.Prec.String())
	b = append(b, `,"cores":`...)
	b = strconv.AppendInt(b, int64(p.Cores), 10)
	b = append(b, `,"total_seconds":`...)
	if b, err = appendJSONFloat(b, p.TotalSeconds); err != nil {
		return nil, err
	}
	b = append(b, `,"mean_ratio_vs_base":`...)
	if b, err = appendJSONFloat(b, p.MeanRatio); err != nil {
		return nil, err
	}
	b = append(b, `,"classes":`...)
	// campaignPointLine leaves Classes nil — rendered as null — when no
	// canonical class appears in ByClass; an open bracket is only
	// committed once the first cell matches.
	mark := len(b)
	first := true
	for _, class := range ndjsonClasses {
		cell, ok := p.ByClass[class]
		if !ok {
			continue
		}
		if first {
			b = append(b, '[')
		} else {
			b = append(b, ',')
		}
		first = false
		b = append(b, `{"class":`...)
		b = appendJSONString(b, class.String())
		b = append(b, `,"seconds":`...)
		if b, err = appendJSONFloat(b, cell.Seconds); err != nil {
			return nil, err
		}
		b = append(b, `,"ratio_vs_base":`...)
		if b, err = appendJSONFloat(b, cell.Ratio.Mean); err != nil {
			return nil, err
		}
		b = append(b, '}')
	}
	if first {
		b = append(b[:mark], `null`...)
	} else {
		b = append(b, ']')
	}
	b = append(b, '}', '\n')
	return b, nil
}
