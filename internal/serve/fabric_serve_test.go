package serve

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/fabric/faulttest"
)

// newFleet starts n worker servers (each a full Server with the fabric
// shard endpoint mounted) and a coordinator server fronting them, and
// returns the coordinator plus the workers for fault injection.
func newFleet(t *testing.T, n int) (coord *httptest.Server, workers []*httptest.Server) {
	t.Helper()
	var targets []string
	for i := 0; i < n; i++ {
		w := httptest.NewServer(New(Options{Parallel: 2, Worker: true}).Handler())
		t.Cleanup(w.Close)
		workers = append(workers, w)
		targets = append(targets, w.URL)
	}
	coord = httptest.NewServer(New(Options{Coordinate: targets}).Handler())
	t.Cleanup(coord.Close)
	return coord, workers
}

// TestDistributedCampaignByteIdentical: every negotiated form of
// POST /v1/campaign — text, CSV, NDJSON stream, binary wire — served by
// a coordinator sharding over two worker daemons is byte-for-byte the
// body a single local server produces. This is the serving-tier face of
// the distributed determinism contract.
func TestDistributedCampaignByteIdentical(t *testing.T) {
	local := httptest.NewServer(New(Options{Parallel: 4}).Handler())
	defer local.Close()
	coord, _ := newFleet(t, 2)

	forms := []struct {
		name   string
		query  string
		accept string
	}{
		{"text", "", ""},
		{"csv", "?format=csv", ""},
		{"ndjson", "?format=ndjson", ""},
		{"binary", "", wireContentType},
	}
	for _, f := range forms {
		wantStatus, wantType, want := postCampaign(t, local, f.query, campaignBody, f.accept)
		if wantStatus != http.StatusOK {
			t.Fatalf("%s: local status %d: %s", f.name, wantStatus, want)
		}
		status, ctype, got := postCampaign(t, coord, f.query, campaignBody, f.accept)
		if status != http.StatusOK {
			t.Fatalf("%s: coordinator status %d: %s", f.name, status, got)
		}
		if ctype != wantType {
			t.Errorf("%s: content type %q, want %q", f.name, ctype, wantType)
		}
		if got != want {
			t.Errorf("%s: distributed body differs from single-process body", f.name)
		}
	}
}

// TestDistributedCampaignSurvivesWorkerLoss: killing one of two workers
// before the campaign starts must not change a single byte — the
// survivor absorbs the orphaned shard.
func TestDistributedCampaignSurvivesWorkerLoss(t *testing.T) {
	local := httptest.NewServer(New(Options{Parallel: 4}).Handler())
	defer local.Close()
	coord, workers := newFleet(t, 2)
	workers[0].CloseClientConnections()
	workers[0].Close()

	_, _, want := postCampaign(t, local, "", campaignBody, "")
	status, _, got := postCampaign(t, coord, "", campaignBody, "")
	if status != http.StatusOK {
		t.Fatalf("status %d with one live worker: %s", status, got)
	}
	if got != want {
		t.Error("body differs after worker loss")
	}
}

// TestDistributedCampaignAllWorkersDown: a fleet with no live workers
// answers 502 — including on the NDJSON path, where the failure happens
// before any line has streamed.
func TestDistributedCampaignAllWorkersDown(t *testing.T) {
	coord, workers := newFleet(t, 2)
	for _, w := range workers {
		w.CloseClientConnections()
		w.Close()
	}
	for _, query := range []string{"", "?format=ndjson"} {
		status, ctype, body := postCampaign(t, coord, query, campaignBody, "")
		if status != http.StatusBadGateway {
			t.Errorf("query %q: status %d, want 502: %s", query, status, body)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("query %q: error content type %q", query, ctype)
		}
		if !strings.Contains(body, "error") {
			t.Errorf("query %q: body lacks error envelope: %s", query, body)
		}
	}
}

// TestDistributedCampaignSpecErrorsStayClientErrors: the coordinator
// tier keeps the 400/404 split — spec errors are decided before any
// worker is contacted.
func TestDistributedCampaignSpecErrorsStayClientErrors(t *testing.T) {
	coord, _ := newFleet(t, 2)
	if status, _, body := postCampaign(t, coord, "", `{"machines": ["NoSuch"]}`, ""); status != http.StatusNotFound {
		t.Errorf("unknown machine: status %d, want 404: %s", status, body)
	}
	if status, _, body := postCampaign(t, coord, "", `{nope`, ""); status != http.StatusBadRequest {
		t.Errorf("malformed spec: status %d, want 400: %s", status, body)
	}
}

// TestWorkerEndpointMountGated: the fabric shard endpoint exists only
// under Options.Worker; an ordinary server answers 404 there.
func TestWorkerEndpointMountGated(t *testing.T) {
	plain := httptest.NewServer(New(Options{}).Handler())
	defer plain.Close()
	resp, err := http.Post(plain.URL+"/v1/fabric/points", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("plain server: fabric endpoint status %d, want 404", resp.StatusCode)
	}

	worker := httptest.NewServer(New(Options{Worker: true}).Handler())
	defer worker.Close()
	resp, err = http.Get(worker.URL + "/v1/fabric/points")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("worker GET: status %d, want 405", resp.StatusCode)
	}
}

// TestFleetDownRetryAfterAndMetric: the fleet-down 502 carries a
// Retry-After hint (the prober revives workers, so the condition is
// expected to clear) and increments its dedicated counter, visible in
// /metrics.
func TestFleetDownRetryAfterAndMetric(t *testing.T) {
	coord, workers := newFleet(t, 2)
	for _, w := range workers {
		w.CloseClientConnections()
		w.Close()
	}
	resp, err := http.Post(coord.URL+"/v1/campaign", "application/json", strings.NewReader(campaignBody))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "5" {
		t.Errorf("Retry-After = %q, want \"5\"", got)
	}
	body := getMetricsBody(t, coord)
	if !strings.Contains(body, "sg2042d_fabric_fleet_down_total 1") {
		t.Errorf("metrics lack the fleet-down counter:\n%s", grepMetrics(body, "fleet_down"))
	}
}

// TestCoordinatorMetricsExposeFleet: a coordinating server's /metrics
// reports per-worker up/quarantined gauges and the self-healing
// counters; a plain server omits the per-worker block but still exports
// the fleet-down counter at zero.
func TestCoordinatorMetricsExposeFleet(t *testing.T) {
	coord, workers := newFleet(t, 2)
	body := getMetricsBody(t, coord)
	for _, w := range workers {
		gauge := `sg2042d_fabric_worker_up{target="` + w.URL + `"} 1`
		if !strings.Contains(body, gauge) {
			t.Errorf("metrics lack %s:\n%s", gauge, grepMetrics(body, "worker_up"))
		}
	}
	for _, counter := range []string{
		"sg2042d_fabric_probe_deaths_total 0",
		"sg2042d_fabric_probe_revivals_total 0",
		"sg2042d_fabric_warm_joins_total 0",
		"sg2042d_fabric_quarantines_total 0",
	} {
		if !strings.Contains(body, counter) {
			t.Errorf("metrics lack %q", counter)
		}
	}

	plain := httptest.NewServer(New(Options{}).Handler())
	defer plain.Close()
	body = getMetricsBody(t, plain)
	if strings.Contains(body, "sg2042d_fabric_worker_up") {
		t.Error("non-coordinating server exports per-worker gauges")
	}
	if !strings.Contains(body, "sg2042d_fabric_fleet_down_total 0") {
		t.Error("non-coordinating server omits the fleet-down counter")
	}
}

// TestReplicatedCampaignQuarantineInMetrics is the serving-tier face of
// the replica acceptance: a coordinator with Replicas: 2 over a fleet
// where one worker tampers a frame body still answers the exact local
// bytes, and /metrics reports the quarantine.
func TestReplicatedCampaignQuarantineInMetrics(t *testing.T) {
	local := httptest.NewServer(New(Options{Parallel: 4}).Handler())
	defer local.Close()

	cluster := faulttest.NewCluster(3)
	defer cluster.Close()
	cluster.Tamper(0, 1)
	coord := httptest.NewServer(New(Options{Coordinate: cluster.Targets(), Replicas: 2}).Handler())
	defer coord.Close()

	_, _, want := postCampaign(t, local, "", campaignBody, "")
	status, _, got := postCampaign(t, coord, "", campaignBody, "")
	if status != http.StatusOK {
		t.Fatalf("status %d with a tampering worker under replication: %s", status, got)
	}
	if got != want {
		t.Error("replicated body differs from single-process body despite quorum")
	}

	body := getMetricsBody(t, coord)
	if !strings.Contains(body, "sg2042d_fabric_quarantines_total 1") {
		t.Errorf("metrics lack the quarantine counter:\n%s", grepMetrics(body, "quarantine"))
	}
	gauge := `sg2042d_fabric_worker_quarantined{target="` + cluster.Targets()[0] + `"} 1`
	if !strings.Contains(body, gauge) {
		t.Errorf("metrics lack %s:\n%s", gauge, grepMetrics(body, "quarantined"))
	}
}

// TestWorkerFabricSurfaceMounted: Options.Worker mounts the whole
// self-healing surface — healthz for the prober, snapshot and warm for
// peer shipping — and a plain server mounts none of it.
func TestWorkerFabricSurfaceMounted(t *testing.T) {
	worker := httptest.NewServer(New(Options{Worker: true}).Handler())
	defer worker.Close()
	plain := httptest.NewServer(New(Options{}).Handler())
	defer plain.Close()

	resp, err := http.Get(worker.URL + "/v1/fabric/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("worker fabric healthz: status %d, want 200", resp.StatusCode)
	}
	resp, err = http.Get(worker.URL + "/v1/fabric/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("worker fabric snapshot: status %d, want 200", resp.StatusCode)
	}
	for _, path := range []string{"/v1/fabric/healthz", "/v1/fabric/snapshot"} {
		resp, err := http.Get(plain.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("plain server %s: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// getMetricsBody fetches /metrics.
func getMetricsBody(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// grepMetrics filters a metrics body to lines containing substr, for
// focused failure output.
func grepMetrics(body, substr string) string {
	var out []string
	for _, line := range strings.Split(body, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	return strings.Join(out, "\n")
}
