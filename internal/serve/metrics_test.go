package serve

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestMetricsRender(t *testing.T) {
	m := newMetrics()
	m.observe("experiment", 10*time.Millisecond, http.StatusOK)
	m.observe("experiment", 5*time.Millisecond, http.StatusNotFound)
	m.observe("batch", 20*time.Millisecond, http.StatusOK)

	out := m.render(30, 10, 4, 2, true, nil)
	for _, want := range []string{
		`sg2042d_requests_total{endpoint="batch"} 1`,
		`sg2042d_requests_total{endpoint="experiment"} 2`,
		`sg2042d_request_errors_total{endpoint="experiment"} 1`,
		`sg2042d_request_errors_total{endpoint="batch"} 0`,
		"sg2042d_engine_cache_hits_total 30",
		"sg2042d_engine_cache_misses_total 10",
		"sg2042d_engine_cache_hit_rate 0.750000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q\n%s", want, out)
		}
	}
	// Endpoint order is sorted, so repeated renders are stable.
	if out2 := m.render(30, 10, 4, 2, true, nil); out2 != out {
		t.Error("render is not deterministic")
	}
	// batch sorts before experiment.
	if strings.Index(out, `{endpoint="batch"}`) > strings.Index(out, `{endpoint="experiment"}`) {
		t.Error("endpoints not sorted")
	}
}

func TestMetricsZeroTraffic(t *testing.T) {
	m := newMetrics()
	out := m.render(0, 0, 0, 0, true, nil)
	if !strings.Contains(out, "sg2042d_engine_cache_hit_rate 0.000000") {
		t.Errorf("zero-traffic hit rate should render 0, got\n%s", out)
	}
}

func TestStatusWriterDefaultsToOK(t *testing.T) {
	m := newMetrics()
	h := m.instrument("probe", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("hi")) // implicit 200, no WriteHeader call
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/probe", nil))
	out := m.render(0, 0, 0, 0, true, nil)
	if !strings.Contains(out, `sg2042d_request_errors_total{endpoint="probe"} 0`) {
		t.Errorf("implicit 200 counted as error:\n%s", out)
	}
}
