package serve

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro"
)

// reportJSON is the JSON envelope for the roofline and cluster reports.
type reportJSON struct {
	Machine string `json:"machine"`
	Report  string `json:"report"`
	Output  string `json:"output"`
}

// handleRoofline serves GET /v1/roofline/{machine}: the machine's
// roofline with all 64 kernels placed on it, as cmd/sg2042sim
// -roofline prints it. ?prec=f32|f64 selects the precision (default
// f64, matching the CLI); ?format=json wraps the text in a JSON
// envelope. Renderings are served from the response cache.
func (s *Server) handleRoofline(w http.ResponseWriter, r *http.Request) {
	label := r.PathValue("machine")
	f, err := negotiate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p, err := parsePrec(r.URL.Query().Get("prec"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	key := renderKey{kind: "roofline", name: label,
		variant: fmt.Sprintf("prec=%v", p), format: reportFormat(f)}
	ent, err := s.rc.get(key, func() ([]byte, string, error) {
		out, err := repro.RooflineReport(label, p)
		if err != nil {
			return nil, "", err
		}
		return renderReport(f, reportJSON{Machine: label, Report: "roofline", Output: out})
	})
	if err != nil {
		// The precision was validated above, so what remains is an
		// unknown machine label.
		writeError(w, http.StatusNotFound, err)
		return
	}
	serveRendered(w, r, ent)
}

// handleCluster serves GET /v1/cluster/{machine}: the MPI scaling model
// of the paper's further-work section. Query parameters mirror the
// CLI: ?net=ib|eth (default ib), ?grid=N (default 512), plus
// ?nodes=1,2,4 to override the swept node counts, ?sockets=N to derive
// a sockets-per-node variant of the preset, and ?prec=f32|f64. An
// unknown machine label is 404; every validation failure (bad socket
// count included) is 400, classified by the library's typed
// *repro.UnknownMachineError rather than error wording.
func (s *Server) handleCluster(w http.ResponseWriter, r *http.Request) {
	label := r.PathValue("machine")
	f, err := negotiate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	q := r.URL.Query()
	network, err := parseNetwork(q.Get("net"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p, err := parsePrec(q.Get("prec"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	grid, err := atoiDefault(q.Get("grid"), 512)
	if err != nil || grid <= 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("bad grid %q (want a positive integer)", q.Get("grid")))
		return
	}
	nodes, err := parseNodes(q.Get("nodes"))
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	sockets, err := atoiDefault(q.Get("sockets"), 0)
	if err != nil || sockets < 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("bad sockets %q (want a non-negative integer)", q.Get("sockets")))
		return
	}
	key := renderKey{kind: "cluster", name: label,
		variant: fmt.Sprintf("net=%s grid=%d prec=%v nodes=%v sockets=%d", network, grid, p, nodes, sockets),
		format:  reportFormat(f)}
	ent, err := s.rc.get(key, func() ([]byte, string, error) {
		out, err := repro.ClusterScalingReport(label, network, grid, p, nodes, sockets)
		if err != nil {
			return nil, "", err
		}
		return renderReport(f, reportJSON{Machine: label, Report: "cluster", Output: out})
	})
	if err != nil {
		var unknown *repro.UnknownMachineError
		if errors.As(err, &unknown) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		// The label resolved; what remains is a derivation the machine
		// cannot support (an over-size socket count, say).
		writeError(w, http.StatusBadRequest, err)
		return
	}
	serveRendered(w, r, ent)
}

// reportFormat collapses CSV onto text for the report endpoints, which
// have no CSV form — one cache entry, not two, for the same bytes.
func reportFormat(f format) format {
	if f == formatCSV {
		return formatText
	}
	return f
}

// renderReport produces a report body as text, as its JSON envelope
// when the request negotiated JSON, or as a one-row binary wire frame
// when it negotiated binary (CSV is not a report format and falls back
// to text).
func renderReport(f format, rep reportJSON) ([]byte, string, error) {
	switch f {
	case formatJSON:
		body, err := marshalJSONBody(rep)
		return body, "application/json", err
	case formatBinary:
		body, err := repro.ReportWire(rep.Machine, rep.Report, rep.Output)
		return body, wireContentType, err
	}
	return []byte(rep.Output), "text/plain; charset=utf-8", nil
}

// parseNetwork validates the ?net parameter against the interconnects
// ClusterScalingReport accepts; empty means the CLI's default ib.
// Validating here keeps the 400-vs-404 decision independent of the
// library's error wording.
func parseNetwork(s string) (string, error) {
	switch strings.ToLower(s) {
	case "":
		return "ib", nil
	case "ib", "infiniband", "eth", "ethernet":
		return s, nil
	}
	return "", fmt.Errorf("unknown network %q (want ib or eth)", s)
}

// parsePrec maps a query value onto a precision; empty means the CLI's
// default FP64.
func parsePrec(s string) (repro.Precision, error) {
	return repro.ParsePrecision(s)
}

// parseNodes parses a comma-separated node-count list; empty keeps the
// report's default sweep.
func parseNodes(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	nodes := make([]int, 0, len(parts))
	for _, part := range parts {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad node count %q (want positive integers, e.g. nodes=1,2,4)", part)
		}
		nodes = append(nodes, n)
	}
	return nodes, nil
}

// atoiDefault parses s, or returns def when s is empty.
func atoiDefault(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}
