package serve

// POST /v1/campaign — the multi-axis what-if surface over HTTP. The
// request body is the JSON campaign spec (repro.CampaignSpecFromJSON;
// schema in docs/EXPERIMENTS.md): registry labels and/or inline machine
// specs, swept axes, and software-config lists. Responses negotiate
// like the sweep endpoint — text, CSV, or a JSON envelope — plus a
// streaming NDJSON form (?format=ndjson or Accept:
// application/x-ndjson) that emits one line per grid point, in grid
// order, as soon as the point and its predecessors finish, then a
// terminal summary line.
//
// Determinism makes all four forms cacheable: the full rendered body —
// the NDJSON form included, since grid order is fixed — is stored in
// the render cache under the bases' fingerprints and the exact bit
// patterns of every axis value, so a repeat campaign costs no model
// time and serves byte-identical responses. Errors split the usual way:
// a malformed or invalid spec is a 400, an unknown registry label a
// 404, and both are decided before any evaluation.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"

	"repro"
	"repro/internal/fabric"
)

// campaignJSON is the non-streaming JSON envelope; Output carries the
// text or CSV rendering verbatim, like the sweep envelope.
type campaignJSON struct {
	Title  string `json:"title"`
	Points int    `json:"points"`
	Format string `json:"format"`
	Output string `json:"output"`
}

// campaignClassJSON is one per-class cell of an NDJSON point line.
type campaignClassJSON struct {
	Class   string  `json:"class"`
	Seconds float64 `json:"seconds"`
	Ratio   float64 `json:"ratio_vs_base"`
}

// campaignPointJSON is one NDJSON line: a grid point with its per-class
// cells in the paper's class order (never a map, so the bytes are
// deterministic).
type campaignPointJSON struct {
	Point        int                 `json:"point"`
	Base         string              `json:"base"`
	Machine      string              `json:"machine"`
	Threads      int                 `json:"threads"`
	Placement    string              `json:"placement"`
	Prec         string              `json:"prec"`
	Cores        int                 `json:"cores"`
	TotalSeconds float64             `json:"total_seconds"`
	MeanRatio    float64             `json:"mean_ratio_vs_base"`
	Classes      []campaignClassJSON `json:"classes"`
}

// campaignSummaryJSON is the terminal NDJSON line.
type campaignSummaryJSON struct {
	Summary struct {
		Title       string         `json:"title"`
		Points      int            `json:"points"`
		Ranked      []int          `json:"ranked"`
		BestByClass []campaignBest `json:"best_by_class"`
		Pareto      []int          `json:"pareto"`
	} `json:"summary"`
}

type campaignBest struct {
	Class string `json:"class"`
	Point int    `json:"point"`
}

func campaignPointLine(p repro.CampaignPoint) campaignPointJSON {
	out := campaignPointJSON{
		Point: p.Index, Base: p.Base, Machine: p.Machine,
		Threads: p.Threads, Placement: p.Placement.String(),
		Prec: p.Prec.String(), Cores: p.Cores,
		TotalSeconds: p.TotalSeconds, MeanRatio: p.MeanRatio,
	}
	for _, class := range repro.Classes() {
		cell, ok := p.ByClass[class]
		if !ok {
			continue
		}
		out.Classes = append(out.Classes, campaignClassJSON{
			Class: class.String(), Seconds: cell.Seconds, Ratio: cell.Ratio.Mean,
		})
	}
	return out
}

func campaignSummaryLine(res repro.CampaignResult) campaignSummaryJSON {
	var out campaignSummaryJSON
	out.Summary.Title = res.Title
	out.Summary.Points = len(res.Points)
	out.Summary.Ranked = res.Ranked
	out.Summary.Pareto = res.Pareto
	for _, class := range repro.Classes() {
		if i, ok := res.BestByClass[class]; ok {
			out.Summary.BestByClass = append(out.Summary.BestByClass,
				campaignBest{Class: class.String(), Point: i})
		}
	}
	return out
}

// handleCampaign serves POST /v1/campaign.
func (s *Server) handleCampaign(w http.ResponseWriter, r *http.Request) {
	format, err := negotiateStream(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	data, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading request body: %w", err))
		return
	}
	// Spec errors are the client's and split 400-vs-404 on whether the
	// spec was invalid or merely named a machine the registry lacks —
	// decided here, before any evaluation. Errors after this point are
	// the engine's own.
	spec, err := repro.CampaignSpecFromJSON(data, s.reg)
	if err != nil {
		var unknown *repro.UnknownMachineError
		if errors.As(err, &unknown) {
			writeError(w, http.StatusNotFound, err)
			return
		}
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if s.coordErr != nil {
		writeError(w, http.StatusInternalServerError,
			fmt.Errorf("coordinator misconfigured: %w", s.coordErr))
		return
	}
	// One expansion for everything downstream (metrics, the JSON
	// envelope): the spec validated above, so Points is just the count.
	points := spec.Points()
	if format == formatNDJSON {
		s.campaignNDJSON(w, r, spec, data, points)
		return
	}
	ent, err := s.rc.get(campaignRenderKey(spec, format), func() ([]byte, string, error) {
		res, err := s.runCampaign(r, spec, data, nil)
		if err != nil {
			return nil, "", err
		}
		if format == formatBinary {
			body, err := repro.CampaignResultWire(res)
			return body, wireContentType, err
		}
		out := repro.FormatCampaignResult(res, format == formatCSV)
		switch format {
		case formatJSON:
			body, err := marshalJSONBody(campaignJSON{
				Title: spec.Title(), Points: points,
				Format: "text", Output: out,
			})
			return body, "application/json", err
		case formatCSV:
			return []byte(out), "text/csv; charset=utf-8", nil
		default:
			return []byte(out), "text/plain; charset=utf-8", nil
		}
	})
	if err != nil {
		s.writeCampaignError(w, err)
		return
	}
	s.met.addCampaign(points, false)
	serveRendered(w, r, ent)
}

// runCampaign evaluates a campaign through whichever tier the server
// runs on: the local engine, or — under Options.Coordinate — the
// distributed fabric, forwarding the client's spec bytes verbatim to
// the workers. Both paths call emit once per point in grid order and
// return the same assembled result, so everything rendered downstream
// is byte-identical across tiers.
func (s *Server) runCampaign(r *http.Request, spec repro.CampaignSpec, raw []byte, emit func(repro.CampaignPoint) error) (repro.CampaignResult, error) {
	if s.coord != nil {
		return s.coord.Run(r.Context(), raw, emit)
	}
	return s.eng.CampaignStream(spec, emit)
}

// writeCampaignError answers a campaign evaluation failure. A fleet
// with no live workers is an upstream failure: 502 with a Retry-After
// hint (the prober revives workers on their next healthy probe, so the
// condition is expected to clear) and its own fleet-down counter — an
// operator alerting on fleet outages should not have to parse generic
// endpoint error rates. Everything else stays a plain 500.
func (s *Server) writeCampaignError(w http.ResponseWriter, err error) {
	var down *fabric.AllWorkersDownError
	if errors.As(err, &down) {
		s.met.addFleetDown()
		w.Header().Set("Retry-After", fleetDownRetryAfter)
		writeError(w, http.StatusBadGateway, err)
		return
	}
	writeError(w, http.StatusInternalServerError, err)
}

// fleetDownRetryAfter is the Retry-After value (in seconds) sent with
// fleet-down 502s — a couple of probe intervals, long enough for a
// bounced worker to be probed back in.
const fleetDownRetryAfter = "5"

// campaignNDJSON serves the streaming form. The first request for a
// grid renders live — each point line is written and flushed as the
// engine finishes it, in grid order — while teeing the bytes into the
// render cache; repeat requests (and concurrent requests that lost the
// singleflight race) serve the cached body, byte-identical to the
// stream.
func (s *Server) campaignNDJSON(w http.ResponseWriter, r *http.Request, spec repro.CampaignSpec, raw []byte, points int) {
	streamed := false
	ent, err := s.rc.get(campaignRenderKey(spec, formatNDJSON), func() ([]byte, string, error) {
		streamed = true
		body, err := s.streamCampaign(w, r, spec, raw)
		return body, "application/x-ndjson", err
	})
	if streamed {
		// The response — or, on a mid-stream engine failure, a terminal
		// error line — has already been written.
		if err == nil {
			s.met.addCampaign(points, true)
		}
		return
	}
	if err != nil {
		s.writeCampaignError(w, err)
		return
	}
	s.met.addCampaign(points, true)
	// The replay is an ordinary cached body: ETag, gzip and Vary come
	// from the shared path (conditional 304s stay GET/HEAD-only).
	serveRendered(w, r, ent)
}

// streamCampaign writes the live NDJSON stream and returns the complete
// body for the render cache. Under Options.Coordinate the points come
// off the fabric — evaluated across the fleet, emitted here in grid
// order — and the lines are byte-identical to the local stream. Point
// lines go through the pooled append encoder (ndjson.go) — byte-for-byte
// what json.Encoder produced, without a reflection walk and interface
// boxing per line — while the one-off summary line stays on
// encoding/json.
func (s *Server) streamCampaign(w http.ResponseWriter, r *http.Request, spec repro.CampaignSpec, raw []byte) ([]byte, error) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	var buf bytes.Buffer
	line := lineBufPool.Get().(*[]byte)
	defer func() { *line = (*line)[:0]; lineBufPool.Put(line) }()
	res, err := s.runCampaign(r, spec, raw, func(p repro.CampaignPoint) error {
		b, err := appendCampaignPoint((*line)[:0], p)
		if err != nil {
			return err
		}
		*line = b[:0]
		if _, err := w.Write(b); err != nil {
			return err
		}
		buf.Write(b)
		if flusher != nil {
			flusher.Flush()
		}
		return nil
	})
	if err != nil {
		if buf.Len() == 0 {
			// Nothing has streamed, so the status line is still ours:
			// answer a real error (502 for a dead fleet) instead of an
			// empty 200 stream.
			s.writeCampaignError(w, err)
			return nil, err
		}
		// The stream is already underway with a 200 status; a terminal
		// error line is the only way left to tell the client the grid
		// is truncated. The body is not cached (the fill error path).
		json.NewEncoder(w).Encode(struct {
			Error string `json:"error"`
		}{err.Error()})
		return nil, err
	}
	if err := json.NewEncoder(io.MultiWriter(w, &buf)).Encode(campaignSummaryLine(res)); err != nil {
		return nil, err
	}
	if flusher != nil {
		flusher.Flush()
	}
	return buf.Bytes(), nil
}

// campaignRenderKey canonicalizes a validated campaign spec into a
// render cache key: every base's full fingerprint (an inline spec with
// one tweaked field must miss) and the exact bit patterns of every axis
// value, plus the software-config lists.
func campaignRenderKey(spec repro.CampaignSpec, f format) renderKey {
	var name, v strings.Builder
	for i, b := range spec.Bases {
		if i > 0 {
			name.WriteString(",")
		}
		name.WriteString(b.Label)
		fmt.Fprintf(&v, "fp=%016x ", b.Fingerprint())
	}
	for _, ax := range spec.Axes {
		fmt.Fprintf(&v, "axis=%s:", ax.Axis)
		for _, x := range ax.Values {
			fmt.Fprintf(&v, "%x,", x)
		}
		v.WriteString(" ")
	}
	fmt.Fprintf(&v, "threads=%v pols=%v precs=%v", spec.Threads, spec.Placements, spec.Precs)
	return renderKey{kind: "campaign", name: name.String(), variant: v.String(), format: f}
}
