package serve

// Boot-time corpus precompute. The servable corpus of GET renderings is
// finite and known up front — every experiment (and "all") in every
// negotiated format, plus the roofline and cluster reports for every
// registered machine at their default parameters — so a daemon that is
// willing to pay at boot can render all of it before taking traffic and
// serve its entire steady-state GET load from the render cache,
// bit-identical to live rendering (the determinism contract makes the
// prewarmed bytes indistinguishable from lazily rendered ones).
// cmd/sg2042d triggers this behind -prewarm; /healthz answers 503 until
// the pass completes, and the sg2042d_prewarm_* metrics record what it
// did.

import (
	"context"
	"fmt"
	"time"

	"repro"
)

// prewarmEntry is one corpus rendering: the cache key a live request
// would use and the fill that computes it.
type prewarmEntry struct {
	key  renderKey
	fill func() ([]byte, string, error)
}

// prewarmCorpus enumerates the full GET corpus in a fixed order:
// experiments (the paper's order, then "all") across text, CSV, JSON
// and binary; then per registry machine the roofline report at both
// precisions and the cluster report at its default parameters, each in
// text, JSON and binary. The keys are exactly the ones the handlers
// build, so a prewarmed entry is a guaranteed hit for the matching
// request.
func (s *Server) prewarmCorpus() []prewarmEntry {
	var entries []prewarmEntry
	expFormats := []format{formatText, formatCSV, formatJSON, formatBinary}
	names := append(append([]string(nil), repro.ExperimentNames...), "all")
	for _, name := range names {
		for _, f := range expFormats {
			name, f := name, f
			entries = append(entries, prewarmEntry{
				key:  renderKey{kind: "experiment", name: name, format: f},
				fill: func() ([]byte, string, error) { return s.renderExperiment(name, f) },
			})
		}
	}
	repFormats := []format{formatText, formatJSON, formatBinary}
	precs := []repro.Precision{repro.F64, repro.F32}
	for _, label := range s.reg.Labels() {
		label := label
		for _, p := range precs {
			for _, f := range repFormats {
				p, f := p, f
				if repro.MachineByLabel(label) == nil {
					// The roofline endpoint resolves against the paper's
					// presets, not the registry; registry-only machines
					// (SG2044, derived multi-socket presets) 404 there
					// and have nothing to warm.
					continue
				}
				entries = append(entries, prewarmEntry{
					key: renderKey{kind: "roofline", name: label,
						variant: fmt.Sprintf("prec=%v", p), format: reportFormat(f)},
					fill: func() ([]byte, string, error) {
						out, err := repro.RooflineReport(label, p)
						if err != nil {
							return nil, "", err
						}
						return renderReport(f, reportJSON{Machine: label, Report: "roofline", Output: out})
					},
				})
			}
		}
		for _, f := range repFormats {
			f := f
			// The cluster defaults mirror handleCluster's: net=ib,
			// grid=512, f64, the report's own node sweep, preset sockets.
			entries = append(entries, prewarmEntry{
				key: renderKey{kind: "cluster", name: label,
					variant: fmt.Sprintf("net=%s grid=%d prec=%v nodes=%v sockets=%d", "ib", 512, repro.F64, []int(nil), 0),
					format:  reportFormat(f)},
				fill: func() ([]byte, string, error) {
					out, err := repro.ClusterScalingReport(label, "ib", 512, repro.F64, nil, 0)
					if err != nil {
						return nil, "", err
					}
					return renderReport(f, reportJSON{Machine: label, Report: "cluster", Output: out})
				},
			})
		}
	}
	return entries
}

// Prewarm renders the full GET corpus into the render cache, then marks
// the server ready (flipping /healthz from 503 to 200 when
// Options.Prewarm gated it). It returns the number of renderings
// filled. Individual fill failures don't abort the pass — the entry
// stays cold and re-renders on its first live request — but they are
// counted in sg2042d_prewarm_errors_total and reported in the returned
// error. Cancelling ctx abandons the pass without marking ready: a
// shutting-down daemon should not start advertising readiness.
func (s *Server) Prewarm(ctx context.Context) (int, error) {
	start := time.Now()
	warmed, failed := 0, 0
	var firstErr error
	for _, e := range s.prewarmCorpus() {
		if err := ctx.Err(); err != nil {
			s.met.setPrewarm(warmed, failed, time.Since(start))
			return warmed, err
		}
		if _, err := s.rc.get(e.key, e.fill); err != nil {
			failed++
			if firstErr == nil {
				firstErr = fmt.Errorf("prewarm %s/%s: %w", e.key.kind, e.key.name, err)
			}
			continue
		}
		warmed++
	}
	s.met.setPrewarm(warmed, failed, time.Since(start))
	s.ready.Store(true)
	if firstErr != nil {
		return warmed, fmt.Errorf("%d of %d prewarm fills failed, first: %w", failed, warmed+failed, firstErr)
	}
	return warmed, nil
}
