package serve

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
)

// TestBinaryNegotiation: every spelling that selects the wire format.
func TestBinaryNegotiation(t *testing.T) {
	for _, c := range []struct {
		query, accept string
	}{
		{"?format=binary", ""},
		{"?format=bin", ""},
		{"?format=wire", ""},
		{"", repro.WireContentType},
		{"", "application/octet-stream"},
		{"", "text/html, application/vnd.sg2042.wire;q=0.9"},
	} {
		r := httptest.NewRequest(http.MethodGet, "/v1/experiments/figure1"+c.query, nil)
		if c.accept != "" {
			r.Header.Set("Accept", c.accept)
		}
		f, err := negotiate(r)
		if err != nil || f != formatBinary {
			t.Errorf("query=%q accept=%q: format %v err %v, want binary", c.query, c.accept, f, err)
		}
	}
}

// TestExperimentBinaryEndpoint: the binary body decodes to the
// experiments' tables and is served under the wire media type.
func TestExperimentBinaryEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 4}))
	defer ts.Close()
	status, ctype, body := get(t, ts, "/v1/experiments/figure1?format=binary", "")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if ctype != repro.WireContentType {
		t.Errorf("content type %q, want %q", ctype, repro.WireContentType)
	}
	tables, err := repro.DecodeWire([]byte(body))
	if err != nil {
		t.Fatalf("binary body does not decode: %v", err)
	}
	if len(tables) != 1 || tables[0].Kind != "figure" {
		t.Fatalf("decoded %d tables, kind %q", len(tables), tables[0].Kind)
	}
	if tables[0].NumRows() == 0 {
		t.Error("figure table has no rows")
	}

	status, _, body = get(t, ts, "/v1/experiments/all?format=binary", "")
	if status != http.StatusOK {
		t.Fatalf("all: status %d", status)
	}
	tables, err = repro.DecodeWire([]byte(body))
	if err != nil {
		t.Fatalf("all: %v", err)
	}
	if len(tables) != len(repro.ExperimentNames) {
		t.Errorf("all decoded %d frames, want %d", len(tables), len(repro.ExperimentNames))
	}
}

// TestBinaryDeterminism is the acceptance criterion for the wire leg of
// the determinism contract: serial, parallel, cached and prewarmed
// serving produce bit-identical binary bodies.
func TestBinaryDeterminism(t *testing.T) {
	serial, err := repro.NewEngine(repro.Options{Parallel: 1}).RunBinary("all")
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := repro.NewEngine(repro.Options{Parallel: 8}).RunBinary("all")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serial, parallel) {
		t.Error("serial and parallel binary bodies differ")
	}

	// Cached: the same HTTP request twice — miss then render-cache hit.
	ts := httptest.NewServer(New(Options{Parallel: 4}))
	defer ts.Close()
	_, _, first := get(t, ts, "/v1/experiments/all?format=binary", "")
	_, _, second := get(t, ts, "/v1/experiments/all?format=binary", "")
	if first != second {
		t.Error("cached binary body differs from first render")
	}
	if first != string(serial) {
		t.Error("HTTP binary body differs from direct engine encoding")
	}

	// Prewarmed: the corpus is rendered before any request arrives.
	warm := New(Options{Parallel: 4, Prewarm: true})
	if _, err := warm.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}
	tsw := httptest.NewServer(warm)
	defer tsw.Close()
	_, _, prewarmed := get(t, tsw, "/v1/experiments/all?format=binary", "")
	if prewarmed != string(serial) {
		t.Error("prewarmed binary body differs from serial encoding")
	}
}

// TestReportAndSweepBinary: binary coverage for the non-experiment
// endpoints — the roofline report frame and a sweep figure frame.
func TestReportAndSweepBinary(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 4}))
	defer ts.Close()

	status, ctype, body := get(t, ts, "/v1/roofline/SG2042?format=binary", "")
	if status != http.StatusOK || ctype != repro.WireContentType {
		t.Fatalf("roofline: status %d ctype %q", status, ctype)
	}
	tables, err := repro.DecodeWire([]byte(body))
	if err != nil || len(tables) != 1 || tables[0].Kind != "report" {
		t.Fatalf("roofline frame: tables %v err %v", len(tables), err)
	}
	// The report text travels verbatim in the output column and matches
	// the text rendering byte for byte.
	_, _, text := get(t, ts, "/v1/roofline/SG2042", "")
	if out := tables[0].Columns[2]; out.Name != "output" || out.Strings[0] != text {
		t.Error("binary report output column differs from the text body")
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep?format=binary",
		strings.NewReader(`{"machine": "SG2042", "axis": "cores", "values": [32, 64]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("sweep: status %d: %s", resp.StatusCode, buf.String())
	}
	tables, err = repro.DecodeWire(buf.Bytes())
	if err != nil || len(tables) != 1 || tables[0].Kind != "figure" {
		t.Fatalf("sweep frame: tables %v err %v", len(tables), err)
	}
}

// TestHealthzReadiness: the live-vs-ready split, table-driven over the
// prewarm states.
func TestHealthzReadiness(t *testing.T) {
	warmed := New(Options{Prewarm: true})
	if _, err := warmed.Prewarm(context.Background()); err != nil {
		t.Fatal(err)
	}
	for _, c := range []struct {
		name       string
		srv        *Server
		path       string
		wantStatus int
		wantBody   string
	}{
		{"no prewarm: ready immediately", New(Options{}), "/healthz", http.StatusOK, "ok\n"},
		{"no prewarm: live", New(Options{}), "/livez", http.StatusOK, "ok\n"},
		{"prewarm pending: not ready", New(Options{Prewarm: true}), "/healthz", http.StatusServiceUnavailable, "warming\n"},
		{"prewarm pending: still live", New(Options{Prewarm: true}), "/livez", http.StatusOK, "ok\n"},
		{"prewarm done: ready", warmed, "/healthz", http.StatusOK, "ok\n"},
		{"prewarm done: live", warmed, "/livez", http.StatusOK, "ok\n"},
	} {
		t.Run(c.name, func(t *testing.T) {
			rec := httptest.NewRecorder()
			c.srv.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, c.path, nil))
			if rec.Code != c.wantStatus || rec.Body.String() != c.wantBody {
				t.Errorf("%s: status %d body %q, want %d %q",
					c.path, rec.Code, rec.Body.String(), c.wantStatus, c.wantBody)
			}
		})
	}
}

// TestPrewarmFillsCorpusAndMetrics: after Prewarm, a request for any
// corpus entry is a render-cache hit, and the prewarm metrics report
// the pass.
func TestPrewarmFillsCorpusAndMetrics(t *testing.T) {
	s := New(Options{Parallel: 4, Prewarm: true})
	n, err := s.Prewarm(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if n != len(s.prewarmCorpus()) {
		t.Errorf("prewarmed %d of %d corpus entries", n, len(s.prewarmCorpus()))
	}
	if got := s.rc.size(); got != n {
		t.Errorf("render cache holds %d entries after prewarming %d", got, n)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	hitsBefore, _ := s.rc.stats()
	for _, path := range []string{
		"/v1/experiments/figure1?format=binary",
		"/v1/experiments/table3?format=csv",
		"/v1/roofline/SG2042?prec=f32&format=json",
		"/v1/cluster/SG2042",
	} {
		if status, _, body := get(t, ts, path, ""); status != http.StatusOK {
			t.Errorf("%s: status %d: %s", path, status, body)
		}
	}
	if h, _ := s.rc.stats(); h != hitsBefore+4 {
		t.Errorf("corpus requests after prewarm: %d hits, want %d (all hits)", h, hitsBefore+4)
	}
	status, _, body := get(t, ts, "/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d", status)
	}
	for _, want := range []string{
		"sg2042d_prewarm_ready 1",
		fmt.Sprintf("sg2042d_prewarm_entries_total %d", n),
		"sg2042d_prewarm_errors_total 0",
		"sg2042d_prewarm_seconds ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestPrewarmCancelled: a cancelled context abandons the pass without
// marking the server ready.
func TestPrewarmCancelled(t *testing.T) {
	s := New(Options{Prewarm: true})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.Prewarm(ctx); err == nil {
		t.Fatal("cancelled prewarm returned nil error")
	}
	if s.ready.Load() {
		t.Error("cancelled prewarm marked the server ready")
	}
}

// TestRenderCacheConcurrentStress is the make-race workload for the
// sharded render cache: many goroutines over a key space bigger than
// the global cap, with error fills mixed in, must always observe the
// body their key's fill produces and keep the size bounded.
func TestRenderCacheConcurrentStress(t *testing.T) {
	c := newRenderCache()
	const workers = 16
	const keys = maxRenderEntries + 300
	const iters = 400
	errs := make(chan error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				n := (seed*31 + i*17) % keys
				k := renderKey{kind: "sweep", name: "stress", variant: fmt.Sprint(n), format: formatText}
				if n%13 == 0 {
					// Error fills must propagate and never stick.
					_, err := c.get(k, func() ([]byte, string, error) {
						return nil, "", fmt.Errorf("fill %d failed", n)
					})
					if err == nil {
						// Another goroutine's successful fill for the same
						// key may legitimately win the slot; that's fine.
						continue
					}
					continue
				}
				want := fmt.Sprintf("body-%d", n)
				ent, err := c.get(k, func() ([]byte, string, error) {
					return []byte(want), "text/plain", nil
				})
				if err != nil {
					errs <- err
					return
				}
				if string(ent.body) != want {
					errs <- fmt.Errorf("key %d served body %q", n, ent.body)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if n := c.size(); n > maxRenderEntries {
		t.Errorf("cache grew to %d entries past the %d cap", n, maxRenderEntries)
	}
	hits, misses := c.stats()
	if hits == 0 || misses == 0 {
		t.Errorf("stress produced hits=%d misses=%d; expected both", hits, misses)
	}
}
