package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
)

// get issues a GET against the server and returns status, content type
// and body.
func get(t *testing.T, ts *httptest.Server, path string, accept string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(body)
}

// TestAllExperimentsAllFormats is the acceptance sweep: every
// experiment name serves in text, CSV and JSON, and the text/CSV bodies
// are byte-identical to the library renderings cmd/sg2042sim prints.
func TestAllExperimentsAllFormats(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 4}))
	defer ts.Close()

	for _, name := range repro.ExperimentNames {
		wantText, err := repro.RunExperiment(name)
		if err != nil {
			t.Fatal(err)
		}
		wantCSV, err := repro.RunExperimentCSV(name)
		if err != nil {
			t.Fatal(err)
		}

		status, ctype, body := get(t, ts, "/v1/experiments/"+name, "")
		if status != http.StatusOK {
			t.Fatalf("%s text: status %d", name, status)
		}
		if !strings.HasPrefix(ctype, "text/plain") {
			t.Errorf("%s text: content type %q", name, ctype)
		}
		if body != wantText {
			t.Errorf("%s: text body differs from RunExperiment output", name)
		}

		status, ctype, body = get(t, ts, "/v1/experiments/"+name+"?format=csv", "")
		if status != http.StatusOK {
			t.Fatalf("%s csv: status %d", name, status)
		}
		// Table 4 has no CSV form: its body is the text fallback and is
		// labelled as such.
		wantCType := "text/csv"
		if name == "table4" {
			wantCType = "text/plain"
		}
		if !strings.HasPrefix(ctype, wantCType) {
			t.Errorf("%s csv: content type %q, want %s", name, ctype, wantCType)
		}
		if body != wantCSV {
			t.Errorf("%s: CSV body differs from RunExperimentCSV output", name)
		}

		status, ctype, body = get(t, ts, "/v1/experiments/"+name+"?format=json", "")
		if status != http.StatusOK {
			t.Fatalf("%s json: status %d", name, status)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("%s json: content type %q", name, ctype)
		}
		var env experimentJSON
		if err := json.Unmarshal([]byte(body), &env); err != nil {
			t.Fatalf("%s json: %v", name, err)
		}
		if env.Name != name || env.Output != wantText {
			t.Errorf("%s: JSON envelope name=%q or output differs from text rendering", name, env.Name)
		}
		info, ok := repro.ExperimentByName(name)
		if !ok || env.Title != info.Title {
			t.Errorf("%s: JSON title %q, want %q", name, env.Title, info.Title)
		}
	}
}

// TestExperimentAll serves the full concatenated run, matching
// cmd/sg2042sim -exp all bytes.
func TestExperimentAll(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 4}))
	defer ts.Close()
	want, err := repro.RunExperiment("all")
	if err != nil {
		t.Fatal(err)
	}
	status, _, body := get(t, ts, "/v1/experiments/all", "")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if body != want {
		t.Error("GET /v1/experiments/all differs from RunExperiment(all)")
	}
}

// TestServedResponsesByteIdentical: a serial server, a parallel server,
// and warm (cached) repeats must all serve the same bytes.
func TestServedResponsesByteIdentical(t *testing.T) {
	serial := httptest.NewServer(New(Options{Parallel: 1}))
	defer serial.Close()
	parallel := httptest.NewServer(New(Options{Parallel: 8}))
	defer parallel.Close()

	for _, path := range []string{
		"/v1/experiments/figure1",
		"/v1/experiments/table2?format=csv",
		"/v1/experiments/figure6",
	} {
		_, _, cold := get(t, serial, path, "")
		_, _, warm := get(t, serial, path, "")
		_, _, coldPar := get(t, parallel, path, "")
		_, _, warmPar := get(t, parallel, path, "")
		if warm != cold {
			t.Errorf("%s: warm serial response differs from cold", path)
		}
		if coldPar != cold || warmPar != cold {
			t.Errorf("%s: parallel server response differs from serial", path)
		}
	}
}

// TestConcurrentRequestsCoalesce is the singleflight property over
// HTTP: many concurrent cold requests for one experiment must share a
// single set of suite computations (figure1 needs six configurations).
func TestConcurrentRequestsCoalesce(t *testing.T) {
	srv := New(Options{Parallel: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const clients = 8
	var wg sync.WaitGroup
	bodies := make([]string, clients)
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := ts.Client().Get(ts.URL + "/v1/experiments/figure1")
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			b, _ := io.ReadAll(resp.Body)
			bodies[i] = string(b)
		}(i)
	}
	wg.Wait()

	want, err := repro.RunExperiment("figure1")
	if err != nil {
		t.Fatal(err)
	}
	for i, body := range bodies {
		if body != want {
			t.Errorf("client %d: body differs from the serial reference", i)
		}
	}
	_, misses := srv.Engine().CacheStats()
	if misses > 6 {
		t.Errorf("%d concurrent requests evaluated %d configurations, want <= 6 (singleflight)", clients, misses)
	}
	// Identical requests coalesce one layer up now: the render cache
	// fills the body once, every other client shares it.
	rhits, rmisses := srv.rc.stats()
	if rmisses != 1 {
		t.Errorf("render cache misses = %d, want 1 (identical requests must share one render)", rmisses)
	}
	if rhits != clients-1 {
		t.Errorf("render cache hits = %d, want %d", rhits, clients-1)
	}
}

func TestListExperiments(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 2}))
	defer ts.Close()
	status, ctype, body := get(t, ts, "/v1/experiments", "")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("content type %q", ctype)
	}
	var resp struct {
		Experiments []repro.ExperimentInfo `json:"experiments"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Experiments) != len(repro.ExperimentNames) {
		t.Fatalf("listed %d experiments, want %d", len(resp.Experiments), len(repro.ExperimentNames))
	}
	for i, info := range resp.Experiments {
		if info.Name != repro.ExperimentNames[i] {
			t.Errorf("experiment %d: name %q, want %q", i, info.Name, repro.ExperimentNames[i])
		}
	}
}

func TestBatchEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 4}))
	defer ts.Close()

	post := func(body string) (int, string) {
		resp, err := ts.Client().Post(ts.URL+"/v1/experiments:batch", "application/json",
			bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(b)
	}

	status, body := post(`{"names": ["table4", "figure1"], "format": "csv"}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp batchResponse
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 || resp.Results[0].Name != "table4" || resp.Results[1].Name != "figure1" {
		t.Fatalf("unexpected batch results: %+v", resp.Results)
	}
	for _, res := range resp.Results {
		want, err := repro.RunExperimentCSV(res.Name)
		if err != nil {
			t.Fatal(err)
		}
		// table4 has no CSV form, so its result is honestly labelled
		// text.
		wantFormat := "csv"
		if res.Name == "table4" {
			wantFormat = "text"
		}
		if res.Output != want || res.Format != wantFormat {
			t.Errorf("%s: batch output/format mismatch (format %q, want %q)",
				res.Name, res.Format, wantFormat)
		}
	}

	// "all" expands in place, in the paper's order.
	status, body = post(`{"names": ["all"]}`)
	if status != http.StatusOK {
		t.Fatalf("batch all: status %d", status)
	}
	resp = batchResponse{}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(repro.ExperimentNames) {
		t.Fatalf("batch all: %d results, want %d", len(resp.Results), len(repro.ExperimentNames))
	}

	for _, bad := range []struct {
		body string
		want int
	}{
		{`{"names": []}`, http.StatusBadRequest},
		{`{"names": ["figure99"]}`, http.StatusNotFound},
		{`{"names": ["figure1"], "format": "xml"}`, http.StatusBadRequest},
		{`{"nmaes": ["figure1"]}`, http.StatusBadRequest},
		{`not json`, http.StatusBadRequest},
	} {
		status, _ := post(bad.body)
		if status != bad.want {
			t.Errorf("batch %q: status %d, want %d", bad.body, status, bad.want)
		}
	}

	// Oversized bodies are rejected, not buffered.
	huge := `{"names": ["` + strings.Repeat("x", 2<<20) + `"]}`
	if status, _ := post(huge); status != http.StatusBadRequest {
		t.Errorf("oversized batch body: status %d, want 400", status)
	}
}

func TestAcceptHeaderNegotiation(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 2}))
	defer ts.Close()
	wantCSV, err := repro.RunExperimentCSV("table1")
	if err != nil {
		t.Fatal(err)
	}
	_, ctype, body := get(t, ts, "/v1/experiments/table1", "text/csv")
	if !strings.HasPrefix(ctype, "text/csv") || body != wantCSV {
		t.Errorf("Accept: text/csv not honoured (content type %q)", ctype)
	}
	_, ctype, _ = get(t, ts, "/v1/experiments/table1", "application/json; q=0.9")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("Accept: application/json not honoured (content type %q)", ctype)
	}
	// Query parameter wins over the header.
	_, ctype, _ = get(t, ts, "/v1/experiments/table1?format=text", "application/json")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("format query should beat Accept header (content type %q)", ctype)
	}
}

func TestErrorResponses(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 2}))
	defer ts.Close()

	status, ctype, body := get(t, ts, "/v1/experiments/figure99", "")
	if status != http.StatusNotFound {
		t.Errorf("unknown experiment: status %d, want 404", status)
	}
	if !strings.HasPrefix(ctype, "application/json") || !strings.Contains(body, "figure99") {
		t.Errorf("unknown experiment: want JSON error naming the input, got %q", body)
	}

	status, _, _ = get(t, ts, "/v1/experiments/figure1?format=xml", "")
	if status != http.StatusBadRequest {
		t.Errorf("bad format: status %d, want 400", status)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/experiments", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST on list: status %d, want 405", resp.StatusCode)
	}
}

func TestRooflineEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 2}))
	defer ts.Close()

	want, err := repro.RooflineReport("SG2042", repro.F64)
	if err != nil {
		t.Fatal(err)
	}
	status, _, body := get(t, ts, "/v1/roofline/SG2042", "")
	if status != http.StatusOK || body != want {
		t.Errorf("roofline: status %d, body match %v", status, body == want)
	}

	want32, err := repro.RooflineReport("SG2042", repro.F32)
	if err != nil {
		t.Fatal(err)
	}
	_, _, body = get(t, ts, "/v1/roofline/SG2042?prec=f32", "")
	if body != want32 {
		t.Error("roofline: prec=f32 not honoured")
	}

	status, _, _ = get(t, ts, "/v1/roofline/NotAMachine", "")
	if status != http.StatusNotFound {
		t.Errorf("unknown machine: status %d, want 404", status)
	}
	status, _, _ = get(t, ts, "/v1/roofline/SG2042?prec=f16", "")
	if status != http.StatusBadRequest {
		t.Errorf("bad precision: status %d, want 400", status)
	}
	status, _, _ = get(t, ts, "/v1/roofline/SG2042?format=xml", "")
	if status != http.StatusBadRequest {
		t.Errorf("bad format: status %d, want 400", status)
	}

	_, _, body = get(t, ts, "/v1/roofline/SG2042?format=json", "")
	var env reportJSON
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatalf("roofline json: %v", err)
	}
	if env.Machine != "SG2042" || env.Report != "roofline" || env.Output != want {
		t.Error("roofline JSON envelope mismatch")
	}
}

func TestClusterEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 2}))
	defer ts.Close()

	want, err := repro.ClusterScalingReport("SG2042", "ib", 512, repro.F64, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	status, _, body := get(t, ts, "/v1/cluster/SG2042", "")
	if status != http.StatusOK || body != want {
		t.Errorf("cluster: status %d, body match %v", status, body == want)
	}

	wantEth, err := repro.ClusterScalingReport("SG2042", "eth", 256, repro.F32, []int{1, 2, 4}, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, _, body = get(t, ts, "/v1/cluster/SG2042?net=eth&grid=256&prec=f32&nodes=1,2,4", "")
	if body != wantEth {
		t.Error("cluster: query parameters not honoured")
	}

	for path, want := range map[string]int{
		"/v1/cluster/NotAMachine":        http.StatusNotFound,
		"/v1/cluster/SG2042?net=carrier": http.StatusBadRequest,
		"/v1/cluster/SG2042?grid=x":      http.StatusBadRequest,
		"/v1/cluster/SG2042?grid=-5":     http.StatusBadRequest,
		"/v1/cluster/SG2042?grid=0":      http.StatusBadRequest,
		"/v1/cluster/SG2042?nodes=1,-2":  http.StatusBadRequest,
		"/v1/cluster/SG2042?format=xml":  http.StatusBadRequest,
	} {
		status, _, _ := get(t, ts, path, "")
		if status != want {
			t.Errorf("%s: status %d, want %d", path, status, want)
		}
	}
}

// TestClusterEndpointSockets: ?sockets= derives multi-socket nodes and
// the 400-vs-404 split follows the typed UnknownMachineError — the bad
// label is the only 404; every socket-count failure is the client's
// 400, whether it dies in query parsing or in the derivation.
func TestClusterEndpointSockets(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 2}))
	defer ts.Close()

	want, err := repro.ClusterScalingReport("SG2042", "ib", 256, repro.F64, []int{1, 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	status, _, body := get(t, ts, "/v1/cluster/SG2042?grid=256&nodes=1,2&sockets=2", "")
	if status != http.StatusOK || body != want {
		t.Errorf("sockets=2: status %d, body match %v", status, body == want)
	}
	if body == "" || !strings.Contains(body, "SG2042/s2") {
		t.Errorf("sockets=2 report does not name the derived machine:\n%s", body)
	}

	cases := []struct {
		name string
		path string
		want int
	}{
		{"unknown machine", "/v1/cluster/SG9999?sockets=2", http.StatusNotFound},
		{"unknown machine, no sockets", "/v1/cluster/SG9999", http.StatusNotFound},
		{"non-numeric sockets", "/v1/cluster/SG2042?sockets=two", http.StatusBadRequest},
		{"negative sockets", "/v1/cluster/SG2042?sockets=-1", http.StatusBadRequest},
		{"oversize sockets", "/v1/cluster/SG2042?sockets=1000000", http.StatusBadRequest},
		{"sockets on dual-socket preset", "/v1/cluster/SG2042x2?sockets=4096", http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, _, body := get(t, ts, tc.path, "")
		if status != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.want, body)
		}
	}
}

func TestMetricsEndpoint(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 2}))
	defer ts.Close()

	get(t, ts, "/v1/experiments/table4", "")
	get(t, ts, "/v1/experiments/table4", "")
	get(t, ts, "/v1/experiments/figure99", "") // 404 → error counter
	get(t, ts, "/v1/experiments", "")

	status, ctype, body := get(t, ts, "/metrics", "")
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("content type %q", ctype)
	}
	for _, want := range []string{
		`sg2042d_requests_total{endpoint="experiment"} 3`,
		`sg2042d_request_errors_total{endpoint="experiment"} 1`,
		`sg2042d_requests_total{endpoint="list"} 1`,
		`sg2042d_request_seconds_total{endpoint="experiment"}`,
		"sg2042d_engine_cache_hits_total",
		"sg2042d_engine_cache_misses_total",
		"sg2042d_engine_cache_hit_rate",
		"# TYPE sg2042d_requests_total counter",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 1}))
	defer ts.Close()
	status, _, body := get(t, ts, "/healthz", "")
	if status != http.StatusOK || !strings.Contains(body, "ok") {
		t.Errorf("healthz: status %d body %q", status, body)
	}
}

// TestNegotiate covers the format table directly.
func TestNegotiate(t *testing.T) {
	for _, tc := range []struct {
		query, accept string
		want          format
	}{
		{"", "", formatText},
		{"format=text", "", formatText},
		{"format=txt", "", formatText},
		{"format=csv", "", formatCSV},
		{"format=json", "", formatJSON},
		{"format=CSV", "", formatCSV},
		{"", "text/csv", formatCSV},
		{"", "application/json", formatJSON},
		{"", "text/plain", formatText},
		{"", "text/html, application/json;q=0.8", formatJSON},
		{"", "*/*", formatText},
		{"format=json", "text/csv", formatJSON},
	} {
		r := httptest.NewRequest(http.MethodGet, "/v1/experiments/figure1?"+tc.query, nil)
		if tc.accept != "" {
			r.Header.Set("Accept", tc.accept)
		}
		got, err := negotiate(r)
		if err != nil {
			t.Errorf("query=%q accept=%q: %v", tc.query, tc.accept, err)
			continue
		}
		if got != tc.want {
			t.Errorf("query=%q accept=%q: format %d, want %d", tc.query, tc.accept, got, tc.want)
		}
	}
	r := httptest.NewRequest(http.MethodGet, "/v1/experiments/figure1?format=xml", nil)
	if _, err := negotiate(r); err == nil {
		t.Error("format=xml accepted")
	}
}
