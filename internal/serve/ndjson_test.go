package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro"
	"repro/internal/stats"
)

// encodeViaStdlib renders p the way the pre-planner server did: the
// intermediate struct through json.Encoder. The append encoder must
// reproduce these bytes exactly — the render cache replays them and the
// determinism gate diffs them.
func encodeViaStdlib(t *testing.T, p repro.CampaignPoint) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(campaignPointLine(p)); err != nil {
		t.Fatalf("stdlib encode: %v", err)
	}
	return buf.Bytes()
}

func ndjsonTestPoint() repro.CampaignPoint {
	classes := repro.Classes()
	p := repro.CampaignPoint{
		Index:        3,
		Base:         "SG2042",
		Machine:      "SG2042/v256",
		Threads:      64,
		Cores:        64,
		TotalSeconds: 12.345678901234567,
		MeanRatio:    1.0625,
		ByClass:      map[repro.Class]repro.CampaignCell{},
	}
	for i, c := range classes {
		p.ByClass[c] = repro.CampaignCell{
			Seconds: 0.5 + float64(i)*0.25,
			Ratio:   stats.Summary{Mean: 1 + float64(i)*0.125},
		}
	}
	return p
}

// TestAppendCampaignPointMatchesStdlib pins the append encoder to
// encoding/json byte-for-byte across representative and adversarial
// points: every float regime json switches format on, strings that
// trigger HTML escaping, control escapes, invalid UTF-8 and the
// JS-hostile line separators.
func TestAppendCampaignPointMatchesStdlib(t *testing.T) {
	base := ndjsonTestPoint()
	cases := map[string]func(p *repro.CampaignPoint){
		"typical": func(p *repro.CampaignPoint) {},
		"empty classes": func(p *repro.CampaignPoint) {
			p.ByClass = nil
		},
		"zero and negative zero": func(p *repro.CampaignPoint) {
			p.TotalSeconds = 0
			p.MeanRatio = math.Copysign(0, -1)
		},
		"tiny switches to e-form": func(p *repro.CampaignPoint) {
			p.TotalSeconds = 1e-7
			p.MeanRatio = 9.999999e-7
		},
		"huge switches to e-form": func(p *repro.CampaignPoint) {
			p.TotalSeconds = 1e21
			p.MeanRatio = 1.23e300
		},
		"boundaries stay f-form": func(p *repro.CampaignPoint) {
			p.TotalSeconds = 1e-6
			p.MeanRatio = 9.999999999999999e20
		},
		"negative values": func(p *repro.CampaignPoint) {
			p.TotalSeconds = -1e-9
			p.MeanRatio = -4.5e22
		},
		"double-digit exponent keeps its digits": func(p *repro.CampaignPoint) {
			p.TotalSeconds = 1e-100
			p.MeanRatio = 1e100
		},
		"shortest-form roundtrip values": func(p *repro.CampaignPoint) {
			p.TotalSeconds = 0.1
			p.MeanRatio = 2.2250738585072014e-308
		},
		"html-escaped labels": func(p *repro.CampaignPoint) {
			p.Base = "a<b>&c"
			p.Machine = "x&y<z>"
		},
		"quotes backslashes and controls": func(p *repro.CampaignPoint) {
			p.Base = "a\"b\\c\nd\re\tf"
			p.Machine = "ctl\x00\x1f\x7f"
		},
		"invalid utf-8 and line separators": func(p *repro.CampaignPoint) {
			p.Base = "bad\xff\xfeutf8"
			p.Machine = "sep\u2028mid\u2029end\u00e9"
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			p := base
			mutate(&p)
			want := encodeViaStdlib(t, p)
			got, err := appendCampaignPoint(nil, p)
			if err != nil {
				t.Fatalf("appendCampaignPoint: %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("encoding diverged:\n got: %q\nwant: %q", got, want)
			}
		})
	}
}

// TestAppendCampaignPointNonFinite mirrors encoding/json: NaN and the
// infinities are encode errors, never bytes.
func TestAppendCampaignPointNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		p := ndjsonTestPoint()
		p.TotalSeconds = bad
		if _, err := appendCampaignPoint(nil, p); err == nil {
			t.Fatalf("value %v: want encode error", bad)
		}
	}
}

// FuzzAppendJSONString cross-checks the string escaper against
// json.Marshal on arbitrary (including invalid-UTF-8) input.
func FuzzAppendJSONString(f *testing.F) {
	f.Add("plain")
	f.Add("a<b>&c\"d\\e\nf")
	f.Add("bad\xff\xc3\x28utf8")
	f.Add("sep\u2028\u2029\u00e9\U0001F600")
	f.Add("\x00\x01\x1f\x7f")
	f.Fuzz(func(t *testing.T, s string) {
		want, err := json.Marshal(s)
		if err != nil {
			t.Skip()
		}
		got := appendJSONString(nil, s)
		if !bytes.Equal(got, want) {
			t.Fatalf("string escape diverged for %q:\n got: %q\nwant: %q", s, got, want)
		}
	})
}

// FuzzAppendJSONFloat cross-checks the float renderer against
// json.Marshal over arbitrary bit patterns.
func FuzzAppendJSONFloat(f *testing.F) {
	f.Add(math.Float64bits(0))
	f.Add(math.Float64bits(1e-7))
	f.Add(math.Float64bits(1e21))
	f.Add(math.Float64bits(-1e-100))
	f.Add(math.Float64bits(0.1))
	f.Fuzz(func(t *testing.T, bits uint64) {
		v := math.Float64frombits(bits)
		want, err := json.Marshal(v)
		gotBytes, gotErr := appendJSONFloat(nil, v)
		if err != nil {
			if gotErr == nil {
				t.Fatalf("value %v: stdlib errors, append encoder does not", v)
			}
			return
		}
		if gotErr != nil {
			t.Fatalf("value %v: unexpected error %v", v, gotErr)
		}
		if !bytes.Equal(gotBytes, want) {
			t.Fatalf("float render diverged for %v (bits %x):\n got: %q\nwant: %q",
				v, bits, gotBytes, want)
		}
	})
}

// BenchmarkAppendCampaignPoint measures the per-line cost of the append
// encoder against the stdlib path it replaced.
func BenchmarkAppendCampaignPoint(b *testing.B) {
	p := ndjsonTestPoint()
	buf := make([]byte, 0, 2048)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = appendCampaignPoint(buf[:0], p)
		if err != nil {
			b.Fatal(err)
		}
	}
}
