package serve

import (
	"compress/gzip"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doGet(t *testing.T, s *Server, path string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest(http.MethodGet, path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// A repeat GET must be served from the render cache with a strong ETag,
// and revalidation with that ETag must answer 304 with no body.
func TestExperimentETagAndConditionalGet(t *testing.T) {
	s := New(Options{Parallel: 1})
	first := doGet(t, s, "/v1/experiments/table4", nil)
	if first.Code != http.StatusOK {
		t.Fatalf("status %d", first.Code)
	}
	etag := first.Header().Get("ETag")
	if etag == "" || strings.HasPrefix(etag, "W/") {
		t.Fatalf("want a strong ETag, got %q", etag)
	}
	second := doGet(t, s, "/v1/experiments/table4", nil)
	if second.Header().Get("ETag") != etag {
		t.Errorf("ETag changed between identical requests: %q vs %q", etag, second.Header().Get("ETag"))
	}
	if second.Body.String() != first.Body.String() {
		t.Error("cached body differs from first rendering")
	}

	cond := doGet(t, s, "/v1/experiments/table4", map[string]string{"If-None-Match": etag})
	if cond.Code != http.StatusNotModified {
		t.Fatalf("revalidation status %d, want 304", cond.Code)
	}
	if cond.Body.Len() != 0 {
		t.Errorf("304 carried a %d-byte body", cond.Body.Len())
	}
	// A stale or foreign tag must get the full body again.
	miss := doGet(t, s, "/v1/experiments/table4", map[string]string{"If-None-Match": `"nope"`})
	if miss.Code != http.StatusOK || miss.Body.Len() == 0 {
		t.Errorf("stale tag: status %d body %d bytes", miss.Code, miss.Body.Len())
	}

	hits, misses := s.rc.stats()
	if misses != 1 {
		t.Errorf("render cache misses = %d, want 1", misses)
	}
	if hits != 3 {
		t.Errorf("render cache hits = %d, want 3", hits)
	}
}

// Distinct formats are distinct cache entries with distinct ETags.
func TestRenderCacheKeyedByFormat(t *testing.T) {
	s := New(Options{Parallel: 1})
	text := doGet(t, s, "/v1/experiments/figure1", nil)
	csv := doGet(t, s, "/v1/experiments/figure1?format=csv", nil)
	jsn := doGet(t, s, "/v1/experiments/figure1?format=json", nil)
	tags := map[string]bool{}
	for _, w := range []*httptest.ResponseRecorder{text, csv, jsn} {
		if w.Code != http.StatusOK {
			t.Fatalf("status %d", w.Code)
		}
		tags[w.Header().Get("ETag")] = true
	}
	if len(tags) != 3 {
		t.Errorf("3 formats produced %d distinct ETags", len(tags))
	}
	if _, misses := s.rc.stats(); misses != 3 {
		t.Errorf("misses = %d, want 3", misses)
	}
}

// Clients that accept gzip get the stored compressed bytes (with a
// gzip-specific ETag) and they must inflate to the identity body.
func TestGzipFromRenderCache(t *testing.T) {
	s := New(Options{Parallel: 1})
	plain := doGet(t, s, "/v1/experiments/figure1", nil)
	gz := doGet(t, s, "/v1/experiments/figure1", map[string]string{"Accept-Encoding": "gzip"})
	if gz.Header().Get("Content-Encoding") != "gzip" {
		t.Fatalf("want gzip response, got encoding %q", gz.Header().Get("Content-Encoding"))
	}
	vary := strings.Join(gz.Header().Values("Vary"), ", ")
	if !strings.Contains(vary, "Accept-Encoding") || !strings.Contains(vary, "Accept") {
		t.Errorf("Vary = %q, want Accept and Accept-Encoding", vary)
	}
	if !strings.HasSuffix(gz.Header().Get("ETag"), `-gzip"`) {
		t.Errorf("gzip representation should carry its own ETag, got %q", gz.Header().Get("ETag"))
	}
	zr, err := gzip.NewReader(gz.Body)
	if err != nil {
		t.Fatal(err)
	}
	inflated, err := io.ReadAll(zr)
	if err != nil {
		t.Fatal(err)
	}
	if string(inflated) != plain.Body.String() {
		t.Error("gzip body does not inflate to the identity body")
	}
	// Conditional gzip revalidation against the gzip ETag.
	cond := doGet(t, s, "/v1/experiments/figure1", map[string]string{
		"Accept-Encoding": "gzip", "If-None-Match": gz.Header().Get("ETag")})
	if cond.Code != http.StatusNotModified {
		t.Errorf("gzip revalidation status %d, want 304", cond.Code)
	}
	// An explicit q=0 opts out of compression.
	ident := doGet(t, s, "/v1/experiments/figure1", map[string]string{"Accept-Encoding": "gzip;q=0"})
	if ident.Header().Get("Content-Encoding") == "gzip" {
		t.Error("gzip served despite q=0")
	}
}

// Small bodies are not worth compressing and must be served identity.
func TestSmallBodiesNotGzipped(t *testing.T) {
	s := New(Options{Parallel: 1})
	w := doGet(t, s, "/v1/experiments/table4?format=csv", nil) // Table 4 is ~300B of text
	if w.Body.Len() >= gzipMinSize {
		t.Skipf("table4 body grew to %dB; pick a smaller fixture", w.Body.Len())
	}
	gz := doGet(t, s, "/v1/experiments/table4?format=csv", map[string]string{"Accept-Encoding": "gzip"})
	if gz.Header().Get("Content-Encoding") != "" {
		t.Errorf("sub-threshold body compressed (%dB)", w.Body.Len())
	}
}

// Reports and sweeps ride the same cache: repeated roofline GETs and
// identical sweep POSTs hit, and sweep ETags revalidate.
func TestReportsAndSweepsCached(t *testing.T) {
	s := New(Options{Parallel: 1})
	a := doGet(t, s, "/v1/roofline/SG2042", nil)
	b := doGet(t, s, "/v1/roofline/SG2042", nil)
	if a.Body.String() != b.Body.String() || b.Header().Get("ETag") == "" {
		t.Error("roofline repeat not served coherently from cache")
	}
	// Different precision is a different entry.
	c := doGet(t, s, "/v1/roofline/SG2042?prec=f32", nil)
	if c.Header().Get("ETag") == a.Header().Get("ETag") {
		t.Error("f32 roofline shares the f64 ETag")
	}

	body := `{"machine":"SG2042","axis":"cores","values":[32,64]}`
	post := func(hdr map[string]string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/sweep", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		for k, v := range hdr {
			req.Header.Set(k, v)
		}
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
		return w
	}
	s1 := post(nil)
	if s1.Code != http.StatusOK {
		t.Fatalf("sweep status %d: %s", s1.Code, s1.Body.String())
	}
	etag := s1.Header().Get("ETag")
	if etag == "" {
		t.Fatal("sweep response has no ETag")
	}
	// 304 is a GET/HEAD answer; a conditional POST gets the full body
	// (from the cache) with the same ETag.
	s2 := post(map[string]string{"If-None-Match": etag})
	if s2.Code != http.StatusOK || s2.Body.Len() == 0 {
		t.Errorf("conditional sweep POST: status %d body %dB, want full 200", s2.Code, s2.Body.Len())
	}
	if s2.Header().Get("ETag") != etag || s2.Body.String() != s1.Body.String() {
		t.Error("repeat sweep not served from cache")
	}
	// Fills: roofline f64, roofline f32, sweep. Hits: roofline repeat,
	// sweep repeat.
	hits, misses := s.rc.stats()
	if hits != 2 || misses != 3 {
		t.Errorf("render cache hits/misses = %d/%d, want 2/3", hits, misses)
	}
}

// The /metrics endpoint must expose the render cache counters.
func TestMetricsExposeRenderCache(t *testing.T) {
	s := New(Options{Parallel: 1})
	doGet(t, s, "/v1/experiments/table4", nil)
	doGet(t, s, "/v1/experiments/table4", nil)
	m := doGet(t, s, "/metrics", nil).Body.String()
	for _, want := range []string{
		"sg2042d_render_cache_hits_total 1",
		"sg2042d_render_cache_misses_total 1",
		"sg2042d_render_cache_hit_rate 0.500000",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// A fill error must not be cached: the slot is removed so a later
// request retries instead of replaying a transient failure forever.
func TestRenderCacheDoesNotCacheErrors(t *testing.T) {
	c := newRenderCache()
	calls := 0
	fail := func() ([]byte, string, error) {
		calls++
		return nil, "", fmt.Errorf("boom %d", calls)
	}
	k := renderKey{kind: "experiment", name: "x"}
	if _, err := c.get(k, fail); err == nil {
		t.Fatal("want error")
	}
	if _, err := c.get(k, fail); err == nil {
		t.Fatal("want error on retry")
	}
	if calls != 2 {
		t.Errorf("fill ran %d times, want 2 (errors must not stick)", calls)
	}
	ok := func() ([]byte, string, error) { return []byte("fine"), "text/plain", nil }
	ent, err := c.get(k, ok)
	if err != nil || string(ent.body) != "fine" {
		t.Errorf("recovery fill: %v %q", err, ent.body)
	}
	// Failed fills count toward neither hits nor misses; the recovery
	// fill is the one miss.
	if hits, misses := c.stats(); hits != 0 || misses != 1 {
		t.Errorf("stats after errors = %d/%d, want 0 hits / 1 miss", hits, misses)
	}
}

// At capacity the cache evicts to make room — memory stays bounded
// under client-controlled key spaces (inline sweep specs), while new
// keys keep caching and coalescing.
func TestRenderCacheBounded(t *testing.T) {
	c := newRenderCache()
	fill := func() ([]byte, string, error) { return []byte("body"), "text/plain", nil }
	for i := 0; i < maxRenderEntries+50; i++ {
		if _, err := c.get(renderKey{kind: "sweep", variant: fmt.Sprint(i)}, fill); err != nil {
			t.Fatal(err)
		}
		if n := c.size(); n > maxRenderEntries {
			t.Fatalf("cache grew to %d entries past the %d cap", n, maxRenderEntries)
		}
	}
	// A fresh key past the cap is still cached: the second request is
	// a hit, not a re-render.
	calls := 0
	over := func() ([]byte, string, error) { calls++; return []byte("over"), "text/plain", nil }
	k := renderKey{kind: "sweep", variant: "overflow"}
	for i := 0; i < 2; i++ {
		ent, err := c.get(k, over)
		if err != nil || string(ent.body) != "over" {
			t.Fatalf("overflow get %d: %v %q", i, err, ent.body)
		}
	}
	if calls != 1 {
		t.Errorf("overflow key rendered %d times, want 1 (evict-and-store keeps caching)", calls)
	}
}

func TestEtagMatches(t *testing.T) {
	for _, c := range []struct {
		header, etag string
		want         bool
	}{
		{`"abc"`, `"abc"`, true},
		{`W/"abc"`, `"abc"`, true},
		{`"x", "abc"`, `"abc"`, true},
		{`*`, `"abc"`, true},
		{`"abcd"`, `"abc"`, false},
		{``, `"abc"`, false},
	} {
		if got := etagMatches(c.header, c.etag); got != c.want {
			t.Errorf("etagMatches(%q, %q) = %v, want %v", c.header, c.etag, got, c.want)
		}
	}
}

// The serving hot path must stay allocation-lean: a conditional GET
// writes no body and a cached full GET writes one stored slice. The
// bounds are deliberately loose (net/http header plumbing allocates)
// but catch any reflection- or re-render-sized regression, which costs
// hundreds of allocations.
func TestServeHotPathAllocs(t *testing.T) {
	s := New(Options{Parallel: 1})
	warm := doGet(t, s, "/v1/experiments/figure1", nil)
	etag := warm.Header().Get("ETag")

	req := httptest.NewRequest(http.MethodGet, "/v1/experiments/figure1", nil)
	full := testing.AllocsPerRun(50, func() {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
	})
	if full > 60 {
		t.Errorf("cached GET allocates %.0f/op, want <= 60", full)
	}

	creq := httptest.NewRequest(http.MethodGet, "/v1/experiments/figure1", nil)
	creq.Header.Set("If-None-Match", etag)
	cond := testing.AllocsPerRun(50, func() {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, creq)
	})
	if cond > 40 {
		t.Errorf("conditional GET allocates %.0f/op, want <= 40", cond)
	}
	if cond >= full {
		t.Errorf("304 path (%.0f allocs) should be cheaper than the body path (%.0f)", cond, full)
	}
}

// BenchmarkHTTPGetCached is the serving hot path end to end: a warm
// server answering GET /v1/experiments/{name} from the render cache.
func BenchmarkHTTPGetCached(b *testing.B) {
	s := New(Options{Parallel: 1})
	req := httptest.NewRequest(http.MethodGet, "/v1/experiments/figure1", nil)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	if w.Code != http.StatusOK {
		b.Fatal(w.Code)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
	}
}

// BenchmarkHTTPGetConditional is the revalidation path: If-None-Match
// answered with a bodyless 304.
func BenchmarkHTTPGetConditional(b *testing.B) {
	s := New(Options{Parallel: 1})
	first := httptest.NewRecorder()
	s.ServeHTTP(first, httptest.NewRequest(http.MethodGet, "/v1/experiments/figure1", nil))
	req := httptest.NewRequest(http.MethodGet, "/v1/experiments/figure1", nil)
	req.Header.Set("If-None-Match", first.Header().Get("ETag"))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := httptest.NewRecorder()
		s.ServeHTTP(w, req)
	}
}
