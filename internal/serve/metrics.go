package serve

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/fabric"
)

// metrics is the server's hand-rolled metrics registry: per-endpoint
// request, error and cumulative-latency counters, rendered in the
// Prometheus text exposition format. The engine's cache counters are
// read live at render time rather than stored, so /metrics never lags
// the cache.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
	// campaignPoints counts grid points served by the campaign endpoint
	// (cached responses included — the points a client received);
	// campaignStreams counts the responses delivered as NDJSON.
	campaignPoints  uint64
	campaignStreams uint64
	// prewarmEntries/prewarmErrors/prewarmSeconds record the boot-time
	// corpus precompute (Server.Prewarm): renderings filled, fills that
	// errored, and the wall-clock the pass took.
	prewarmEntries uint64
	prewarmErrors  uint64
	prewarmSeconds float64
	// fleetDown counts campaign requests refused because every fabric
	// worker was down (the 502 + Retry-After path) — its own counter,
	// not folded into generic endpoint errors, so an operator can alert
	// on fleet outages without parsing error rates.
	fleetDown uint64
}

type endpointStats struct {
	requests uint64
	errors   uint64 // responses with status >= 400
	seconds  float64
}

func newMetrics() *metrics {
	return &metrics{endpoints: make(map[string]*endpointStats)}
}

// instrument wraps h, timing each request and counting error responses
// under the endpoint label.
func (m *metrics) instrument(endpoint string, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		m.observe(endpoint, time.Since(start), sw.status)
	})
}

// setPrewarm records a completed prewarm pass.
func (m *metrics) setPrewarm(entries, errors int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.prewarmEntries = uint64(entries)
	m.prewarmErrors = uint64(errors)
	m.prewarmSeconds = d.Seconds()
}

// addFleetDown records one campaign refused with the whole fleet down.
func (m *metrics) addFleetDown() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fleetDown++
}

// addCampaign records one served campaign response.
func (m *metrics) addCampaign(points int, streamed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.campaignPoints += uint64(points)
	if streamed {
		m.campaignStreams++
	}
}

func (m *metrics) observe(endpoint string, d time.Duration, status int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := m.endpoints[endpoint]
	if st == nil {
		st = &endpointStats{}
		m.endpoints[endpoint] = st
	}
	st.requests++
	if status >= 400 {
		st.errors++
	}
	st.seconds += d.Seconds()
}

// render emits the registry in the Prometheus text format, folding in
// the engine cache and render cache counters, the readiness gauge, and
// — when the server coordinates a fabric — the fleet's self-healing
// stats. Endpoints are sorted so the output is stable.
func (m *metrics) render(cacheHits, cacheMisses, renderHits, renderMisses uint64, ready bool, fs *fabric.FabricStats) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	var b strings.Builder

	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)

	b.WriteString("# HELP sg2042d_requests_total HTTP requests served, by endpoint.\n")
	b.WriteString("# TYPE sg2042d_requests_total counter\n")
	for _, name := range names {
		fmt.Fprintf(&b, "sg2042d_requests_total{endpoint=%q} %d\n", name, m.endpoints[name].requests)
	}
	b.WriteString("# HELP sg2042d_request_errors_total HTTP responses with status >= 400, by endpoint.\n")
	b.WriteString("# TYPE sg2042d_request_errors_total counter\n")
	for _, name := range names {
		fmt.Fprintf(&b, "sg2042d_request_errors_total{endpoint=%q} %d\n", name, m.endpoints[name].errors)
	}
	b.WriteString("# HELP sg2042d_request_seconds_total Cumulative request latency in seconds, by endpoint.\n")
	b.WriteString("# TYPE sg2042d_request_seconds_total counter\n")
	for _, name := range names {
		fmt.Fprintf(&b, "sg2042d_request_seconds_total{endpoint=%q} %.6f\n", name, m.endpoints[name].seconds)
	}

	b.WriteString("# HELP sg2042d_engine_cache_hits_total Suite evaluations served from the engine cache.\n")
	b.WriteString("# TYPE sg2042d_engine_cache_hits_total counter\n")
	fmt.Fprintf(&b, "sg2042d_engine_cache_hits_total %d\n", cacheHits)
	b.WriteString("# HELP sg2042d_engine_cache_misses_total Suite evaluations computed on a cache miss.\n")
	b.WriteString("# TYPE sg2042d_engine_cache_misses_total counter\n")
	fmt.Fprintf(&b, "sg2042d_engine_cache_misses_total %d\n", cacheMisses)
	b.WriteString("# HELP sg2042d_engine_cache_hit_rate Fraction of suite lookups served from the cache.\n")
	b.WriteString("# TYPE sg2042d_engine_cache_hit_rate gauge\n")
	rate := 0.0
	if total := cacheHits + cacheMisses; total > 0 {
		rate = float64(cacheHits) / float64(total)
	}
	fmt.Fprintf(&b, "sg2042d_engine_cache_hit_rate %.6f\n", rate)

	b.WriteString("# HELP sg2042d_render_cache_hits_total Responses served from the rendered-body cache.\n")
	b.WriteString("# TYPE sg2042d_render_cache_hits_total counter\n")
	fmt.Fprintf(&b, "sg2042d_render_cache_hits_total %d\n", renderHits)
	b.WriteString("# HELP sg2042d_render_cache_misses_total Responses rendered on a cache miss.\n")
	b.WriteString("# TYPE sg2042d_render_cache_misses_total counter\n")
	fmt.Fprintf(&b, "sg2042d_render_cache_misses_total %d\n", renderMisses)
	b.WriteString("# HELP sg2042d_render_cache_hit_rate Fraction of cacheable requests served without re-rendering.\n")
	b.WriteString("# TYPE sg2042d_render_cache_hit_rate gauge\n")
	rrate := 0.0
	if total := renderHits + renderMisses; total > 0 {
		rrate = float64(renderHits) / float64(total)
	}
	fmt.Fprintf(&b, "sg2042d_render_cache_hit_rate %.6f\n", rrate)

	b.WriteString("# HELP sg2042d_campaign_points_total Campaign grid points served (cached responses included).\n")
	b.WriteString("# TYPE sg2042d_campaign_points_total counter\n")
	fmt.Fprintf(&b, "sg2042d_campaign_points_total %d\n", m.campaignPoints)
	b.WriteString("# HELP sg2042d_campaign_streams_total Campaign responses delivered as NDJSON streams.\n")
	b.WriteString("# TYPE sg2042d_campaign_streams_total counter\n")
	fmt.Fprintf(&b, "sg2042d_campaign_streams_total %d\n", m.campaignStreams)

	b.WriteString("# HELP sg2042d_fabric_fleet_down_total Campaign requests refused because every fabric worker was down.\n")
	b.WriteString("# TYPE sg2042d_fabric_fleet_down_total counter\n")
	fmt.Fprintf(&b, "sg2042d_fabric_fleet_down_total %d\n", m.fleetDown)

	if fs != nil {
		b.WriteString("# HELP sg2042d_fabric_probe_deaths_total Worker live-to-dead transitions observed by the health prober.\n")
		b.WriteString("# TYPE sg2042d_fabric_probe_deaths_total counter\n")
		fmt.Fprintf(&b, "sg2042d_fabric_probe_deaths_total %d\n", fs.ProbeDeaths)
		b.WriteString("# HELP sg2042d_fabric_probe_revivals_total Worker dead-to-live transitions (rejoins) observed by the health prober.\n")
		b.WriteString("# TYPE sg2042d_fabric_probe_revivals_total counter\n")
		fmt.Fprintf(&b, "sg2042d_fabric_probe_revivals_total %d\n", fs.ProbeRevivals)
		b.WriteString("# HELP sg2042d_fabric_warm_joins_total Warm-join snapshot shipments completed for (re)joined workers.\n")
		b.WriteString("# TYPE sg2042d_fabric_warm_joins_total counter\n")
		fmt.Fprintf(&b, "sg2042d_fabric_warm_joins_total %d\n", fs.WarmJoins)
		b.WriteString("# HELP sg2042d_fabric_warm_entries_total Suite-cache entries installed across all warm-joins.\n")
		b.WriteString("# TYPE sg2042d_fabric_warm_entries_total counter\n")
		fmt.Fprintf(&b, "sg2042d_fabric_warm_entries_total %d\n", fs.WarmInstalled)
		b.WriteString("# HELP sg2042d_fabric_warm_errors_total Failed warm shipments plus per-peer snapshot pull failures.\n")
		b.WriteString("# TYPE sg2042d_fabric_warm_errors_total counter\n")
		fmt.Fprintf(&b, "sg2042d_fabric_warm_errors_total %d\n", fs.WarmErrors)
		b.WriteString("# HELP sg2042d_fabric_quarantines_total Workers quarantined after diverging from replica quorum.\n")
		b.WriteString("# TYPE sg2042d_fabric_quarantines_total counter\n")
		fmt.Fprintf(&b, "sg2042d_fabric_quarantines_total %d\n", fs.Quarantines)
		b.WriteString("# HELP sg2042d_fabric_worker_up Whether each fabric worker is currently live in the ring.\n")
		b.WriteString("# TYPE sg2042d_fabric_worker_up gauge\n")
		for _, ms := range fs.Members {
			up := 0
			if ms.Live {
				up = 1
			}
			fmt.Fprintf(&b, "sg2042d_fabric_worker_up{target=%q} %d\n", ms.Target, up)
		}
		b.WriteString("# HELP sg2042d_fabric_worker_quarantined Whether each fabric worker is quarantined (sticky-dead until reinstated).\n")
		b.WriteString("# TYPE sg2042d_fabric_worker_quarantined gauge\n")
		for _, ms := range fs.Members {
			q := 0
			if ms.Quarantined {
				q = 1
			}
			fmt.Fprintf(&b, "sg2042d_fabric_worker_quarantined{target=%q} %d\n", ms.Target, q)
		}
	}

	b.WriteString("# HELP sg2042d_prewarm_ready Whether the server is ready for traffic (prewarm complete, or prewarm not requested).\n")
	b.WriteString("# TYPE sg2042d_prewarm_ready gauge\n")
	readyVal := 0
	if ready {
		readyVal = 1
	}
	fmt.Fprintf(&b, "sg2042d_prewarm_ready %d\n", readyVal)
	b.WriteString("# HELP sg2042d_prewarm_entries_total Renderings filled by the boot-time prewarm pass.\n")
	b.WriteString("# TYPE sg2042d_prewarm_entries_total counter\n")
	fmt.Fprintf(&b, "sg2042d_prewarm_entries_total %d\n", m.prewarmEntries)
	b.WriteString("# HELP sg2042d_prewarm_errors_total Prewarm fills that errored (the corpus entry stays cold).\n")
	b.WriteString("# TYPE sg2042d_prewarm_errors_total counter\n")
	fmt.Fprintf(&b, "sg2042d_prewarm_errors_total %d\n", m.prewarmErrors)
	b.WriteString("# HELP sg2042d_prewarm_seconds Wall-clock seconds the prewarm pass took.\n")
	b.WriteString("# TYPE sg2042d_prewarm_seconds gauge\n")
	fmt.Fprintf(&b, "sg2042d_prewarm_seconds %.6f\n", m.prewarmSeconds)
	return b.String()
}

// statusWriter records the response status for the error counter.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}
