package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro"
)

// postSweep issues a POST /v1/sweep and returns status, content type
// and body.
func postSweep(t *testing.T, ts *httptest.Server, query, body, accept string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep"+query, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), string(out)
}

func TestMachinesList(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 2}))
	defer ts.Close()

	status, ctype, body := get(t, ts, "/v1/machines", "")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("status %d ctype %s", status, ctype)
	}
	var resp struct {
		Machines []struct {
			Label       string  `json:"label"`
			Cores       int     `json:"cores"`
			ClockGHz    float64 `json:"clock_ghz"`
			NUMARegions int     `json:"numa_regions"`
			VectorISA   string  `json:"vector_isa"`
		} `json:"machines"`
	}
	if err := json.Unmarshal([]byte(body), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Machines) != 9 {
		t.Fatalf("%d machines, want 9 (the paper's seven + SG2044 + SG2042x2)", len(resp.Machines))
	}
	byLabel := map[string]int{}
	for i, m := range resp.Machines {
		byLabel[m.Label] = i
	}
	sg, ok := byLabel["SG2042"]
	if !ok {
		t.Fatal("SG2042 missing from the registry listing")
	}
	if m := resp.Machines[sg]; m.Cores != 64 || m.ClockGHz != 2.0 || m.NUMARegions != 4 || m.VectorISA != "rvv0.7.1" {
		t.Errorf("SG2042 summary wrong: %+v", m)
	}
	if _, ok := byLabel["SG2044"]; !ok {
		t.Error("SG2044 missing from the registry listing")
	}
}

// TestMachineSpecRoundTrips: the spec served by GET /v1/machines/{name}
// decodes through repro.MachineFromJSON back into the preset.
func TestMachineSpecRoundTrips(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 2}))
	defer ts.Close()

	for _, label := range []string{"SG2042", "sg2044", "Rome"} {
		status, ctype, body := get(t, ts, "/v1/machines/"+label, "")
		if status != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
			t.Fatalf("%s: status %d ctype %s", label, status, ctype)
		}
		m, err := repro.MachineFromJSON([]byte(body))
		if err != nil {
			t.Fatalf("%s: served spec does not decode: %v", label, err)
		}
		if !strings.EqualFold(m.Label, label) {
			t.Errorf("%s: decoded label %q", label, m.Label)
		}
	}

	status, _, body := get(t, ts, "/v1/machines/SG9999", "")
	if status != http.StatusNotFound {
		t.Fatalf("unknown machine: status %d", status)
	}
	if !strings.Contains(body, "SG9999") || !strings.Contains(body, "SG2042") {
		t.Errorf("404 body should name the bad label and the known ones: %s", body)
	}
}

const vectorSweepBody = `{"machine": "SG2042", "axis": "vector", "values": [128, 256, 512], "threads": 1}`

// TestSweepEndpointByteIdentical is the acceptance criterion: the text
// and CSV bodies of POST /v1/sweep are byte-identical to the library
// rendering cmd/sg2042sim -sweep prints.
func TestSweepEndpointByteIdentical(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 4}))
	defer ts.Close()

	spec := repro.SweepSpec{Base: repro.SG2042(), Axis: repro.SweepVector,
		Values: []float64{128, 256, 512}, Threads: 1, Prec: repro.F64}
	wantText, err := repro.RunSweep(spec, repro.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := repro.RunSweep(spec, repro.Options{Parallel: 1, CSV: true})
	if err != nil {
		t.Fatal(err)
	}

	status, ctype, body := postSweep(t, ts, "", vectorSweepBody, "")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "text/plain") {
		t.Fatalf("text: status %d ctype %s body %s", status, ctype, body)
	}
	if body != wantText {
		t.Error("text body differs from the library rendering")
	}

	status, ctype, body = postSweep(t, ts, "?format=csv", vectorSweepBody, "")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "text/csv") {
		t.Fatalf("csv: status %d ctype %s", status, ctype)
	}
	if body != wantCSV {
		t.Error("CSV body differs from the library rendering")
	}

	// Accept-header negotiation works on the POST too.
	status, _, body = postSweep(t, ts, "", vectorSweepBody, "text/csv")
	if status != http.StatusOK || body != wantCSV {
		t.Error("Accept: text/csv negotiation failed")
	}

	// JSON envelope wraps the exact text bytes.
	status, ctype, body = postSweep(t, ts, "?format=json", vectorSweepBody, "")
	if status != http.StatusOK || !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("json: status %d ctype %s", status, ctype)
	}
	var env struct {
		Machine, Axis, Title, Format, Output string
	}
	if err := json.Unmarshal([]byte(body), &env); err != nil {
		t.Fatal(err)
	}
	if env.Machine != "SG2042" || env.Axis != "vector" || env.Format != "text" {
		t.Errorf("envelope fields wrong: %+v", env)
	}
	if env.Output != wantText {
		t.Error("JSON envelope output differs from the text rendering")
	}
	if !strings.HasPrefix(wantText, env.Title) {
		t.Errorf("title %q is not the output heading", env.Title)
	}
}

// TestNodesSweepEndpointByteIdentical extends the byte-identity
// contract to the topology axes: a nodes sweep past 64 cores serves
// the exact bytes the library (and therefore cmd/sg2042sim -sweep
// nodes=...) renders for the same spec.
func TestNodesSweepEndpointByteIdentical(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 4}))
	defer ts.Close()

	spec := repro.SweepSpec{Base: repro.SG2042(), Axis: repro.SweepNodes,
		Values: []float64{1, 2, 4}, Prec: repro.F64}
	wantText, err := repro.RunSweep(spec, repro.Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	body := `{"machine": "SG2042", "axis": "nodes", "values": [1, 2, 4]}`
	status, _, out := postSweep(t, ts, "", body, "")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, out)
	}
	if out != wantText {
		t.Error("nodes sweep body differs from the library rendering")
	}
	for _, want := range []string{"SG2042/node2", "SG2042/node4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}

	// The sockets axis serves too, on the dual-socket preset's base.
	status, _, out = postSweep(t, ts, "",
		`{"machine": "SG2042", "axis": "sockets", "values": [2]}`, "")
	if status != http.StatusOK || !strings.Contains(out, "SG2042/s2") {
		t.Errorf("sockets sweep: status %d body %s", status, out)
	}
}

// TestSweepCustomSpec: an inline machine spec — the GET /v1/machines
// form — sweeps without being registered.
func TestSweepCustomSpec(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 4}))
	defer ts.Close()

	_, _, spec := get(t, ts, "/v1/machines/SG2044", "")
	custom := strings.Replace(spec, `"label": "SG2044"`, `"label": "myrv64"`, 1)
	body := `{"spec": ` + custom + `, "axis": "numa", "values": [1, 2, 4]}`
	status, _, out := postSweep(t, ts, "", body, "")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, out)
	}
	for _, want := range []string{"myrv64/n1", "myrv64/n2", "myrv64/n4"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

// TestSweepErrors: the 400-vs-404 split — client mistakes in the spec
// or parameters are 400s naming the problem; an unknown registry label
// is a 404.
func TestSweepErrors(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 2}))
	defer ts.Close()

	badSpec := func(mutate func(string) string) string {
		_, _, spec := get(t, ts, "/v1/machines/SG2042", "")
		return `{"spec": ` + mutate(spec) + `, "axis": "cores", "values": [4]}`
	}

	cases := []struct {
		name       string
		query      string
		body       string
		wantStatus int
		wantErr    string
	}{
		{"unknown machine", "", `{"machine": "SG9999", "axis": "cores", "values": [4]}`,
			http.StatusNotFound, "SG9999"},
		{"no base", "", `{"axis": "cores", "values": [4]}`,
			http.StatusBadRequest, "needs a base"},
		{"both bases", "", `{"machine": "SG2042", "spec": {"name": "x"}, "axis": "cores", "values": [4]}`,
			http.StatusBadRequest, "not both"},
		{"unknown axis", "", `{"machine": "SG2042", "axis": "dies", "values": [2]}`,
			http.StatusBadRequest, "unknown sweep axis"},
		{"no values", "", `{"machine": "SG2042", "axis": "cores"}`,
			http.StatusBadRequest, "no values"},
		{"fractional cores", "", `{"machine": "SG2042", "axis": "cores", "values": [2.5]}`,
			http.StatusBadRequest, "integer"},
		{"vectorless widen", "", `{"machine": "V2", "axis": "vector", "values": [256]}`,
			http.StatusBadRequest, "no vector unit"},
		{"uneven numa", "", `{"machine": "SG2042", "axis": "numa", "values": [3]}`,
			http.StatusBadRequest, "divide"},
		{"bad prec", "", `{"machine": "SG2042", "axis": "cores", "values": [4], "prec": "f16"}`,
			http.StatusBadRequest, "f16"},
		{"bad placement", "", `{"machine": "SG2042", "axis": "cores", "values": [4], "placement": "spiral"}`,
			http.StatusBadRequest, "spiral"},
		{"bad format", "?format=xml", vectorSweepBody,
			http.StatusBadRequest, "xml"},
		{"unknown field", "", `{"machine": "SG2042", "axis": "cores", "values": [4], "model": "x"}`,
			http.StatusBadRequest, "model"},
		{"garbage body", "", `{`,
			http.StatusBadRequest, "decoding"},
		{"zero-core spec", "", badSpec(func(s string) string {
			return strings.Replace(s, `"cores": 64`, `"cores": 0`, 1)
		}), http.StatusBadRequest, "cores"},
		{"bad NUMA map spec", "", badSpec(func(s string) string {
			return strings.Replace(s, `"numa_regions": 4`, `"numa_regions": 5`, 1)
		}), http.StatusBadRequest, "NUMA"},
		{"unknown ISA spec", "", badSpec(func(s string) string {
			return strings.Replace(s, `"isa": "rvv0.7.1"`, `"isa": "sve2"`, 1)
		}), http.StatusBadRequest, "unknown vector ISA"},
	}
	for _, tc := range cases {
		status, ctype, body := postSweep(t, ts, tc.query, tc.body, "")
		if status != tc.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.wantStatus, body)
			continue
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("%s: error content type %s", tc.name, ctype)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil {
			t.Errorf("%s: error body is not JSON: %s", tc.name, body)
			continue
		}
		if !strings.Contains(e.Error, tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, e.Error, tc.wantErr)
		}
	}
}

// TestConcurrentSweepsCoalesce: identical concurrent sweeps share suite
// evaluations through the engine's singleflight cache instead of
// multiplying model work.
func TestConcurrentSweepsCoalesce(t *testing.T) {
	srv := New(Options{Parallel: 4})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	const n = 6
	var wg sync.WaitGroup
	outs := make([]string, n)
	for i := range outs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, outs[i] = postSweep(t, ts, "", vectorSweepBody, "")
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if outs[i] != outs[0] {
			t.Fatalf("concurrent sweep %d differs from the first", i)
		}
	}
	// One sweep needs 4 configurations (base + 3 points); concurrent
	// identical sweeps must singleflight instead of evaluating 24.
	if _, misses := srv.Engine().CacheStats(); misses > 4 {
		t.Errorf("misses = %d, want <= 4", misses)
	}
	// The identical sweeps themselves coalesce on the render cache:
	// one fill, five shared renderings.
	rhits, rmisses := srv.rc.stats()
	if rmisses != 1 {
		t.Errorf("render cache misses = %d, want 1 (identical sweeps must share one render)", rmisses)
	}
	if rhits != n-1 {
		t.Errorf("render cache hits = %d, want %d", rhits, n-1)
	}
}

// TestSweepMetricsInstrumented: the sweep and machine endpoints report
// through /metrics like every other route.
func TestSweepMetricsInstrumented(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 2}))
	defer ts.Close()

	get(t, ts, "/v1/machines", "")
	get(t, ts, "/v1/machines/SG2042", "")
	postSweep(t, ts, "", `{"machine": "SG2042", "axis": "clock", "values": [2.0], "threads": 1}`, "")
	postSweep(t, ts, "", `{"machine": "SG9999", "axis": "clock", "values": [2.0]}`, "")

	_, _, body := get(t, ts, "/metrics", "")
	for _, want := range []string{
		`sg2042d_requests_total{endpoint="machines"} 1`,
		`sg2042d_requests_total{endpoint="machine"} 1`,
		`sg2042d_requests_total{endpoint="sweep"} 2`,
		`sg2042d_request_errors_total{endpoint="sweep"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}
