// Package serve exposes the memoized study engine over HTTP/JSON — the
// first network-facing layer of the system. One Server wraps one
// repro.Engine, so every client shares a single suite cache: the first
// request for a configuration evaluates it, concurrent requests for the
// same experiment coalesce onto the engine's singleflight entries, and
// later requests are served from memory, bit-identical.
//
// Routes (see docs/ARCHITECTURE.md and the README for examples):
//
//	GET  /v1/experiments            list experiment metadata (JSON)
//	GET  /v1/experiments/{name}     one experiment; text, CSV or JSON
//	POST /v1/experiments:batch      many experiments in one request
//	GET  /v1/machines               list the machine registry (JSON)
//	GET  /v1/machines/{name}        one machine's full JSON spec
//	POST /v1/sweep                  what-if hardware sweep; text, CSV or JSON
//	POST /v1/campaign               multi-axis campaign; text, CSV, JSON or streaming NDJSON
//	GET  /v1/roofline/{machine}     roofline report for a machine
//	GET  /v1/cluster/{machine}      MPI scaling model for a machine
//	GET  /metrics                   Prometheus-style text metrics
//	GET  /healthz                   readiness probe (503 until prewarm completes)
//	GET  /livez                     liveness probe (200 from the first request)
//	POST /v1/fabric/points          shard-scoped campaign points (Options.Worker)
//	GET  /v1/fabric/healthz         fabric liveness for the coordinator's prober (Options.Worker)
//	GET  /v1/fabric/snapshot        arc-scoped suite-cache snapshot (Options.Worker)
//	POST /v1/fabric/warm            pull peer snapshots into the local cache (Options.Worker)
//
// With Options.Coordinate the campaign endpoint shards its grid over a
// fleet of workers through internal/fabric; every format's bytes stay
// identical to a single-process run (the distributed determinism
// contract — docs/ARCHITECTURE.md).
//
// The text and CSV bodies are byte-identical to cmd/sg2042sim's stdout
// for the same experiment and options — the HTTP layer is purely
// transport, never rendering. Binary bodies (?format=binary) are the
// internal/wire frames, under the same determinism contract.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync/atomic"

	"repro"
	"repro/internal/fabric"
)

// wireContentType is the binary wire format's media type, aliased so
// the negotiation table stays a constant switch.
const wireContentType = repro.WireContentType

// Options configures a Server.
type Options struct {
	// Parallel is the engine's global concurrency bound, exactly as in
	// repro.Options: 0 picks GOMAXPROCS, 1 evaluates serially. Output
	// is identical for every setting.
	Parallel int
	// Prewarm declares that the owner will call Server.Prewarm before
	// the server is ready for traffic: /healthz answers 503 until the
	// prewarm pass completes (liveness stays on /livez). When false the
	// server is ready immediately.
	Prewarm bool
	// Worker mounts the distributed fabric's shard-scoped campaign
	// endpoint (POST /v1/fabric/points) beside the ordinary surface,
	// backed by the same engine — shard evaluations memoize into, and
	// warm-restart from, the one suite cache.
	Worker bool
	// Coordinate, when non-empty, runs POST /v1/campaign through a
	// fabric coordinator over these worker base URLs instead of the
	// local engine. Every other endpoint still serves locally. The
	// targets must be non-empty and unique (cmd/sg2042d validates them
	// at boot); an invalid list surfaces as an error on every campaign
	// request.
	Coordinate []string
	// Replicas dispatches each campaign shard to this many
	// ring-successor workers and byte-compares their frames, emitting
	// on quorum and quarantining divergent workers (<=1 disables
	// replication). Only meaningful with Coordinate.
	Replicas int
}

// Server is the HTTP front end of the study engine. It is safe for
// concurrent use; create it once and share it across connections.
type Server struct {
	eng *repro.Engine
	reg *repro.MachineRegistry
	met *metrics
	mux *http.ServeMux
	// rc caches fully rendered response bodies (with precomputed ETags
	// and gzip forms): the engine is deterministic, so a repeat request
	// for the same rendering never re-renders — see rendercache.go.
	rc *renderCache
	// ready gates /healthz: false from New until the prewarm pass
	// completes (immediately true when Options.Prewarm is unset).
	ready atomic.Bool
	// wk is the fabric worker endpoint (Options.Worker); coord runs
	// campaigns through the distributed fabric (Options.Coordinate).
	// coordErr holds a target-list validation failure, answered on
	// every campaign request.
	wk       *fabric.Worker
	coord    *fabric.Coordinator
	coordErr error
}

// New returns a Server around a fresh engine with the paper's study
// defaults and the default machine registry (the paper's presets plus
// the SG2044).
func New(opts Options) *Server {
	s := &Server{
		eng: repro.NewEngine(repro.Options{Parallel: opts.Parallel}),
		reg: repro.DefaultMachineRegistry(),
		met: newMetrics(),
		mux: http.NewServeMux(),
		rc:  newRenderCache(),
	}
	s.ready.Store(!opts.Prewarm)
	if opts.Worker {
		s.wk = fabric.NewWorker(s.eng, s.reg)
	}
	if len(opts.Coordinate) > 0 {
		s.coord, s.coordErr = fabric.NewCoordinator(opts.Coordinate, s.reg, nil)
		if s.coord != nil {
			s.coord.Replicas = opts.Replicas
		}
	}
	s.routes()
	return s
}

// Engine returns the server's underlying engine (tests use it to
// observe cache statistics).
func (s *Server) Engine() *repro.Engine { return s.eng }

// Coordinator returns the fabric coordinator, or nil when the server
// is not coordinating (status surfaces and tests reach fleet state
// through it).
func (s *Server) Coordinator() *fabric.Coordinator { return s.coord }

// StartFabricProber begins coordinator-side health probing: workers
// die and rejoin the ring as their /v1/fabric/healthz answers change,
// with snapshot shipping on every rejoin. No-op unless the server
// coordinates. The prober stops when ctx is cancelled.
func (s *Server) StartFabricProber(ctx context.Context, cfg fabric.ProbeConfig) {
	if s.coord != nil {
		s.coord.StartProber(ctx, cfg)
	}
}

func (s *Server) routes() {
	s.handle("GET /v1/experiments", "list", s.handleList)
	s.handle("GET /v1/experiments/{name}", "experiment", s.handleExperiment)
	s.handle("POST /v1/experiments:batch", "batch", s.handleBatch)
	s.handle("GET /v1/machines", "machines", s.handleMachines)
	s.handle("GET /v1/machines/{name}", "machine", s.handleMachine)
	s.handle("POST /v1/sweep", "sweep", s.handleSweep)
	s.handle("POST /v1/campaign", "campaign", s.handleCampaign)
	s.handle("GET /v1/roofline/{machine}", "roofline", s.handleRoofline)
	s.handle("GET /v1/cluster/{machine}", "cluster", s.handleCluster)
	if s.wk != nil {
		s.handle("POST "+fabric.PointsPath, "fabric-points", s.wk.ServeHTTP)
		// The self-healing surface: the coordinator's prober watches
		// fabric healthz, and peers ship arc-scoped cache snapshots to a
		// (re)joining worker through snapshot/warm.
		s.handle("GET "+fabric.HealthPath, "fabric-healthz", s.wk.ServeHealth)
		s.handle("GET "+fabric.SnapshotPath, "fabric-snapshot", s.wk.ServeSnapshot)
		s.handle("POST "+fabric.WarmPath, "fabric-warm", s.wk.ServeWarm)
	}
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /livez", s.handleLivez)
}

// handleLivez is pure liveness: the process is up and serving requests.
// It never gates on prewarm, so orchestrators can tell a booting daemon
// from a dead one.
func (s *Server) handleLivez(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// handleHealthz is readiness: 200 "ok" once the server is ready for
// traffic, 503 "warming" while a requested prewarm pass (Options.
// Prewarm + Server.Prewarm) is still rendering the corpus. Without
// prewarm the server is ready from the first request, so existing
// health checks keep working unchanged.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "warming")
		return
	}
	fmt.Fprintln(w, "ok")
}

// handle registers h under pattern with per-endpoint metrics.
func (s *Server) handle(pattern, endpoint string, h http.HandlerFunc) {
	s.mux.Handle(pattern, s.met.instrument(endpoint, h))
}

// Handler returns the root handler; cmd/sg2042d mounts it on an
// http.Server and tests mount it on httptest.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler so a *Server can be mounted
// directly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// experimentJSON is the JSON envelope for one rendered experiment. The
// Output field carries the text (or CSV) rendering verbatim, so JSON
// clients see the same bytes text clients do.
type experimentJSON struct {
	Name   string `json:"name"`
	Title  string `json:"title,omitempty"`
	Format string `json:"format"`
	Output string `json:"output"`
}

// handleList serves GET /v1/experiments: the experiment metadata, in
// the paper's order.
func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, struct {
		Experiments []repro.ExperimentInfo `json:"experiments"`
	}{repro.Experiments()})
}

// handleExperiment serves GET /v1/experiments/{name} with content
// negotiation: ?format=text|csv|json wins, else the Accept header
// decides, else text. "all" is accepted and concatenates every
// experiment, exactly like cmd/sg2042sim -exp all. Renderings are
// served from the response cache: the body bytes, ETag and gzip form
// are computed once per (name, format) and repeat requests — or 304s
// for revalidations — cost no rendering at all.
func (s *Server) handleExperiment(w http.ResponseWriter, r *http.Request) {
	name := strings.ToLower(strings.TrimSpace(r.PathValue("name")))
	format, err := negotiate(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if err := validExperiment(name); err != nil {
		writeError(w, http.StatusNotFound, err)
		return
	}
	ent, err := s.rc.get(renderKey{kind: "experiment", name: name, format: format},
		func() ([]byte, string, error) { return s.renderExperiment(name, format) })
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	serveRendered(w, r, ent)
}

// renderExperiment produces the exact bytes handleExperiment used to
// stream per request — the cache fill path.
func (s *Server) renderExperiment(name string, format format) ([]byte, string, error) {
	if format == formatBinary {
		body, err := s.eng.RunBinary(name)
		return body, wireContentType, err
	}
	out, err := s.eng.RunFormat(name, format == formatCSV)
	if err != nil {
		return nil, "", err
	}
	switch format {
	case formatJSON:
		title := ""
		if info, ok := repro.ExperimentByName(name); ok {
			title = info.Title
		}
		body, err := marshalJSONBody(experimentJSON{
			Name: name, Title: title,
			Format: "text", Output: out,
		})
		return body, "application/json", err
	case formatCSV:
		// Table 4 has no CSV form and renders as text; label the body
		// by what it actually is ("all" concatenations stay text/csv).
		ctype := "text/csv; charset=utf-8"
		if info, ok := repro.ExperimentByName(name); ok && !info.CSV {
			ctype = "text/plain; charset=utf-8"
		}
		return []byte(out), ctype, nil
	default:
		return []byte(out), "text/plain; charset=utf-8", nil
	}
}

// batchRequest is the body of POST /v1/experiments:batch.
type batchRequest struct {
	// Names lists the experiments to run; "all" expands in place.
	Names []string `json:"names"`
	// Format is "text" (default) or "csv" — the rendering embedded in
	// each result.
	Format string `json:"format,omitempty"`
}

type batchResponse struct {
	Results []experimentJSON `json:"results"`
}

// handleBatch serves POST /v1/experiments:batch: the named experiments
// fanned out over the engine's internal/par worker pool, results
// aligned with the (expanded) request order. Identical names in
// concurrent batches coalesce on the engine cache like any other
// request.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	// A legitimate batch is a few hundred bytes of names; bound the
	// body so a client cannot stream an unbounded request into memory.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding request body: %w", err))
		return
	}
	if len(req.Names) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf(`empty batch: pass {"names": ["figure1", ...]}`))
		return
	}
	var csv bool
	switch req.Format {
	case "", "text":
	case "csv":
		csv = true
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown batch format %q (want text or csv)", req.Format))
		return
	}
	for _, name := range req.Names {
		if err := validExperiment(strings.ToLower(strings.TrimSpace(name))); err != nil {
			writeError(w, http.StatusNotFound, err)
			return
		}
	}
	names, outs, err := s.eng.RunEach(req.Names, csv)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	resp := batchResponse{Results: make([]experimentJSON, len(names))}
	for i, name := range names {
		// The format field reports what the output actually is: an
		// experiment without a CSV form (Table 4) renders as text even
		// in a CSV batch.
		title, format := "", "text"
		if info, ok := repro.ExperimentByName(name); ok {
			title = info.Title
			if csv && info.CSV {
				format = "csv"
			}
		}
		resp.Results[i] = experimentJSON{Name: name, Title: title, Format: format, Output: outs[i]}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format: per-endpoint request/error/latency counters plus the live
// engine cache and render cache counters (hits, misses, and the
// derived hit rates).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	hits, misses := s.eng.CacheStats()
	rhits, rmisses := s.rc.stats()
	var fs *fabric.FabricStats
	if s.coord != nil {
		v := s.coord.Stats()
		fs = &v
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprint(w, s.met.render(hits, misses, rhits, rmisses, s.ready.Load(), fs))
}

// validExperiment reports whether a canonicalized name is servable —
// one of the paper's experiments, or the "all" batch. Validating up
// front keeps the 404-vs-500 decision independent of the engine's
// error wording.
func validExperiment(name string) error {
	if name == "all" {
		return nil
	}
	if _, ok := repro.ExperimentByName(name); !ok {
		return fmt.Errorf("unknown experiment %q (want one of %s, or all)",
			name, strings.Join(repro.ExperimentNames, ", "))
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// marshalJSONBody renders v exactly as writeJSON streams it (indented,
// trailing newline), as a byte slice the render cache can keep.
func marshalJSONBody(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, struct {
		Error string `json:"error"`
	}{err.Error()})
}
