package serve

import (
	"fmt"
	"net/http"
	"strings"
)

// format is a negotiated response rendering.
type format int

const (
	formatText format = iota
	formatCSV
	formatJSON
	// formatNDJSON streams one JSON object per line as results finish;
	// only the campaign endpoint negotiates it (see negotiateStream).
	formatNDJSON
	// formatBinary is the binary wire format (internal/wire): versioned,
	// length-prefixed, self-describing column frames under
	// application/vnd.sg2042.wire — the encode-free hot path.
	formatBinary
)

// negotiate picks the response format for an experiment request. The
// explicit ?format=text|csv|json|binary query parameter wins; otherwise
// the Accept header's listed types are honoured in order (text/csv,
// application/json, the wire media type or application/octet-stream,
// text/plain); otherwise text — the same bytes cmd/sg2042sim prints.
func negotiate(r *http.Request) (format, error) {
	switch q := strings.ToLower(r.URL.Query().Get("format")); q {
	case "text", "txt":
		return formatText, nil
	case "csv":
		return formatCSV, nil
	case "json":
		return formatJSON, nil
	case "binary", "bin", "wire":
		return formatBinary, nil
	case "":
	default:
		return formatText, fmt.Errorf("unknown format %q (want text, csv, json or binary)", q)
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mediaType := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch strings.ToLower(mediaType) {
		case "text/csv":
			return formatCSV, nil
		case "application/json":
			return formatJSON, nil
		case wireContentType, "application/octet-stream":
			return formatBinary, nil
		case "text/plain":
			return formatText, nil
		}
	}
	return formatText, nil
}

// negotiateStream is negotiate for endpoints that also stream:
// ?format=ndjson or an Accept listing application/x-ndjson (or
// application/jsonlines) selects NDJSON; everything else falls through
// to the ordinary negotiation.
func negotiateStream(r *http.Request) (format, error) {
	if strings.ToLower(r.URL.Query().Get("format")) == "ndjson" {
		return formatNDJSON, nil
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mediaType := strings.TrimSpace(strings.SplitN(part, ";", 2)[0])
		switch strings.ToLower(mediaType) {
		case "application/x-ndjson", "application/jsonlines":
			return formatNDJSON, nil
		}
	}
	return negotiate(r)
}
