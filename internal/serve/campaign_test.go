package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro"
)

const campaignBody = `{
	"machines": ["SG2042", "SG2044"],
	"axes": [
		{"axis": "vector", "values": [128, 256]},
		{"axis": "numa", "values": [1, 4]}
	],
	"threads": [0, 8]
}`

// postCampaign issues a POST /v1/campaign and returns status, content
// type and body.
func postCampaign(t *testing.T, ts *httptest.Server, query, body, accept string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/campaign"+query, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := new(strings.Builder)
	if _, err := io.Copy(out, resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header.Get("Content-Type"), out.String()
}

// TestCampaignEndpointByteIdentical: the text and CSV bodies are the
// exact bytes the library renders (and therefore the exact bytes
// cmd/sg2042sim -campaign prints), on cold and warm caches alike.
func TestCampaignEndpointByteIdentical(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 4}))
	defer ts.Close()

	spec, err := repro.CampaignSpecFromJSON([]byte(campaignBody), nil)
	if err != nil {
		t.Fatal(err)
	}
	eng := repro.NewEngine(repro.Options{Parallel: 4})
	wantText, err := eng.CampaignFormat(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	wantCSV, err := eng.CampaignFormat(spec, true)
	if err != nil {
		t.Fatal(err)
	}

	for run := 0; run < 2; run++ {
		status, ctype, body := postCampaign(t, ts, "", campaignBody, "")
		if status != http.StatusOK {
			t.Fatalf("run %d text: status %d: %s", run, status, body)
		}
		if !strings.HasPrefix(ctype, "text/plain") {
			t.Errorf("run %d text: content type %q", run, ctype)
		}
		if body != wantText {
			t.Errorf("run %d: text body differs from library rendering", run)
		}
		status, ctype, body = postCampaign(t, ts, "?format=csv", campaignBody, "")
		if status != http.StatusOK {
			t.Fatalf("run %d csv: status %d", run, status)
		}
		if !strings.HasPrefix(ctype, "text/csv") {
			t.Errorf("run %d csv: content type %q", run, ctype)
		}
		if body != wantCSV {
			t.Errorf("run %d: CSV body differs from library rendering", run)
		}
	}

	// The JSON envelope wraps the same text rendering.
	status, _, body := postCampaign(t, ts, "", campaignBody, "application/json")
	if status != http.StatusOK {
		t.Fatalf("json: status %d", status)
	}
	var envelope struct {
		Title  string `json:"title"`
		Points int    `json:"points"`
		Output string `json:"output"`
	}
	if err := json.Unmarshal([]byte(body), &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Output != wantText {
		t.Error("JSON envelope output differs from text rendering")
	}
	if envelope.Points != 16 {
		t.Errorf("JSON envelope points %d, want 16", envelope.Points)
	}
}

// TestCampaignErrorSplit pins the boundary: invalid specs are 400s,
// an unknown registry label is a 404, and an unknown format is a 400 —
// all before any evaluation.
func TestCampaignErrorSplit(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 2}))
	defer ts.Close()

	cases := []struct {
		name   string
		query  string
		body   string
		status int
	}{
		{"malformed JSON", "", `{`, http.StatusBadRequest},
		{"unknown field", "", `{"machines": ["SG2042"], "bogus": 1}`, http.StatusBadRequest},
		{"no machines", "", `{"axes": [{"axis": "cores", "values": [8]}]}`, http.StatusBadRequest},
		{"unknown axis", "", `{"machines": ["SG2042"], "axes": [{"axis": "dies", "values": [2]}]}`, http.StatusBadRequest},
		{"bad placement", "", `{"machines": ["SG2042"], "placements": ["scatter"]}`, http.StatusBadRequest},
		{"bad precision", "", `{"machines": ["SG2042"], "precisions": ["f16"]}`, http.StatusBadRequest},
		{"underivable grid", "", `{"machines": ["V2"], "axes": [{"axis": "vector", "values": [256]}]}`, http.StatusBadRequest},
		{"oversized grid", "", `{"machines": ["SG2042"], "axes": [{"axis": "clock", "values": [` +
			strings.TrimSuffix(strings.Repeat("1,", 8200), ",") + `]}]}`, http.StatusBadRequest},
		{"unknown machine", "", `{"machines": ["SG9999"]}`, http.StatusNotFound},
		{"unknown format", "?format=yaml", campaignBody, http.StatusBadRequest},
	}
	for _, tc := range cases {
		status, ctype, body := postCampaign(t, ts, tc.query, tc.body, "")
		if status != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, status, tc.status, body)
		}
		if !strings.HasPrefix(ctype, "application/json") {
			t.Errorf("%s: error content type %q", tc.name, ctype)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal([]byte(body), &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q is not an error envelope", tc.name, body)
		}
	}
}

// TestCampaignNDJSONOrdering: the stream delivers one line per grid
// point, indices in grid order, then a terminal summary line — and the
// cached replay is byte-identical to the live stream.
func TestCampaignNDJSONOrdering(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 8}))
	defer ts.Close()

	status, ctype, live := postCampaign(t, ts, "?format=ndjson", campaignBody, "")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, live)
	}
	if !strings.HasPrefix(ctype, "application/x-ndjson") {
		t.Errorf("content type %q", ctype)
	}
	lines := strings.Split(strings.TrimRight(live, "\n"), "\n")
	if len(lines) != 16+1 {
		t.Fatalf("%d lines, want 16 points + 1 summary", len(lines))
	}
	for i, line := range lines[:16] {
		var p struct {
			Point   int    `json:"point"`
			Machine string `json:"machine"`
			Classes []struct {
				Class string  `json:"class"`
				Ratio float64 `json:"ratio_vs_base"`
			} `json:"classes"`
		}
		if err := json.Unmarshal([]byte(line), &p); err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if p.Point != i {
			t.Errorf("line %d carries point %d — stream not in grid order", i, p.Point)
		}
		if p.Machine == "" || len(p.Classes) == 0 {
			t.Errorf("line %d incomplete: %s", i, line)
		}
	}
	var summary struct {
		Summary struct {
			Points int   `json:"points"`
			Ranked []int `json:"ranked"`
			Pareto []int `json:"pareto"`
		} `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[16]), &summary); err != nil {
		t.Fatalf("summary line: %v", err)
	}
	if summary.Summary.Points != 16 || len(summary.Summary.Ranked) != 16 || len(summary.Summary.Pareto) == 0 {
		t.Errorf("summary incomplete: %s", lines[16])
	}

	// Accept-header negotiation reaches the same stream, served from
	// the render cache, byte-identical.
	status, _, cached := postCampaign(t, ts, "", campaignBody, "application/x-ndjson")
	if status != http.StatusOK {
		t.Fatalf("cached replay: status %d", status)
	}
	if cached != live {
		t.Error("cached NDJSON replay differs from the live stream")
	}
}

// TestCampaignMetrics: the endpoint shows up in /metrics with the
// campaign point and stream counters.
func TestCampaignMetrics(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 4}))
	defer ts.Close()

	small := `{"machines": ["SG2042"], "axes": [{"axis": "cores", "values": [8, 16]}]}`
	if status, _, body := postCampaign(t, ts, "", small, ""); status != http.StatusOK {
		t.Fatalf("campaign: status %d: %s", status, body)
	}
	if status, _, body := postCampaign(t, ts, "?format=ndjson", small, ""); status != http.StatusOK {
		t.Fatalf("campaign ndjson: status %d: %s", status, body)
	}
	_, _, metrics := get(t, ts, "/metrics", "")
	for _, want := range []string{
		`sg2042d_requests_total{endpoint="campaign"} 2`,
		"sg2042d_campaign_points_total 4",
		"sg2042d_campaign_streams_total 1",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestCampaignCachedHitAllocs is the serving-path guard: once a grid's
// text rendering is cached, answering it again must not re-evaluate or
// re-render anything — the whole request stays within a fixed small
// allocation budget.
func TestCampaignCachedHitAllocs(t *testing.T) {
	srv := New(Options{Parallel: 2})
	small := `{"machines": ["SG2042"], "axes": [{"axis": "cores", "values": [8, 16]}]}`

	warm := httptest.NewRequest(http.MethodPost, "/v1/campaign", strings.NewReader(small))
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, warm)
	if rec.Code != http.StatusOK {
		t.Fatalf("warming request: status %d: %s", rec.Code, rec.Body)
	}
	want := rec.Body.String()

	avg := testing.AllocsPerRun(50, func() {
		req := httptest.NewRequest(http.MethodPost, "/v1/campaign", strings.NewReader(small))
		rec := httptest.NewRecorder()
		srv.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK || rec.Body.String() != want {
			t.Fatal("cached hit served a different response")
		}
	})
	// A cold render of this grid costs tens of thousands of allocations
	// (suite evaluations, rendering); a cached hit is request plumbing
	// plus the spec decode. The bound is deliberately loose — it fails
	// only if the hit path regresses to re-rendering.
	if avg > 400 {
		t.Errorf("cached campaign hit allocates %.0f per request, want <= 400", avg)
	}
}

// collidingCampaignBody is a grid that collides on purpose: the
// duplicated clock value yields two combos sharing one derived machine,
// and threads 0 and 64 both resolve to full occupancy on the 64-core
// SG2042 — four grid points, one unique evaluation.
const collidingCampaignBody = `{
  "machines": ["SG2042"],
  "axes": [{"axis": "clock", "values": [2.0, 2.0]}],
  "threads": [0, 64]
}`

// TestCampaignNDJSONDedupIdenticalLines: over HTTP, colliding grid
// points stream as identical NDJSON lines except for their grid index —
// cross-point deduplication never shows in the bytes.
func TestCampaignNDJSONDedupIdenticalLines(t *testing.T) {
	ts := httptest.NewServer(New(Options{Parallel: 4}))
	defer ts.Close()
	status, _, body := postCampaign(t, ts, "?format=ndjson", collidingCampaignBody, "")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	lines := strings.Split(strings.TrimSuffix(body, "\n"), "\n")
	if len(lines) != 5 {
		t.Fatalf("stream has %d lines, want 4 points + summary", len(lines))
	}
	normalize := func(line string, i int) string {
		prefix := fmt.Sprintf(`{"point":%d,`, i)
		if !strings.HasPrefix(line, prefix) {
			t.Fatalf("line %d lacks its index prefix: %s", i, line)
		}
		return strings.TrimPrefix(line, prefix)
	}
	want := normalize(lines[0], 0)
	for i := 1; i < 4; i++ {
		if got := normalize(lines[i], i); got != want {
			t.Errorf("colliding point %d line differs:\n got: %s\nwant: %s", i, got, want)
		}
	}
}

// TestDistributedCampaignDedupByteIdentical: a colliding grid sharded
// over a two-worker fleet — including a degraded fleet that lost a
// worker — serves byte-for-byte what a single local server serves, in
// both the text and streaming forms.
func TestDistributedCampaignDedupByteIdentical(t *testing.T) {
	local := httptest.NewServer(New(Options{Parallel: 4}).Handler())
	defer local.Close()
	coord, workers := newFleet(t, 2)
	for _, query := range []string{"", "?format=ndjson"} {
		wantStatus, _, want := postCampaign(t, local, query, collidingCampaignBody, "")
		if wantStatus != http.StatusOK {
			t.Fatalf("query %q: local status %d: %s", query, wantStatus, want)
		}
		status, _, got := postCampaign(t, coord, query, collidingCampaignBody, "")
		if status != http.StatusOK {
			t.Fatalf("query %q: coordinator status %d: %s", query, status, got)
		}
		if got != want {
			t.Errorf("query %q: distributed colliding-grid body differs from local", query)
		}
	}
	// Degrade the fleet and re-ask through a fresh coordinator (the
	// first one has the renderings cached): still byte-identical.
	workers[0].CloseClientConnections()
	workers[0].Close()
	coord2 := httptest.NewServer(New(Options{Coordinate: []string{workers[0].URL, workers[1].URL}}).Handler())
	defer coord2.Close()
	_, _, want := postCampaign(t, local, "", collidingCampaignBody, "")
	status, _, got := postCampaign(t, coord2, "", collidingCampaignBody, "")
	if status != http.StatusOK {
		t.Fatalf("degraded fleet: status %d: %s", status, got)
	}
	if got != want {
		t.Error("degraded-fleet colliding-grid body differs from local")
	}
}
