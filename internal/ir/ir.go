// Package ir defines the loop intermediate representation the study uses
// to describe each RAJAPerf kernel to the compiler model
// (internal/autovec), the trace generator (internal/trace) and the
// performance model (internal/perfmodel).
//
// Each kernel contributes one Loop describing its hot loop nest: how deep
// the nest is, what the body reads and writes and with what access
// pattern, and which vectorisation-relevant features the body has
// (conditionals, reductions, loop-carried dependences, indirection, ...).
// The auto-vectoriser model makes the same decision a real compiler's
// loop vectoriser makes from the same information.
package ir

import (
	"fmt"
	"strings"
)

// AccessKind distinguishes reads from writes.
type AccessKind int

const (
	Load AccessKind = iota
	Store
)

func (k AccessKind) String() string {
	if k == Store {
		return "store"
	}
	return "load"
}

// Pattern classifies the address stream of one array reference. The
// trace generator and the cache-traffic model both dispatch on it.
type Pattern int

const (
	// Unit is a unit-stride stream: a[i].
	Unit Pattern = iota
	// Strided is a constant non-unit stride: a[i*s].
	Strided
	// Stencil reads a small neighbourhood around i (Jacobi, FDTD, ...).
	Stencil
	// Transpose walks a matrix in the non-contiguous direction.
	Transpose
	// Indirect is a gather/scatter through an index array: a[idx[i]].
	Indirect
	// Random is a data-dependent, effectively random stream (sorting).
	Random
	// Broadcast re-reads a small object every iteration (scalar
	// coefficients, a tiny lookup table); it lives in L1/registers.
	Broadcast
)

var patternNames = map[Pattern]string{
	Unit:      "unit",
	Strided:   "strided",
	Stencil:   "stencil",
	Transpose: "transpose",
	Indirect:  "indirect",
	Random:    "random",
	Broadcast: "broadcast",
}

func (p Pattern) String() string {
	if s, ok := patternNames[p]; ok {
		return s
	}
	return fmt.Sprintf("Pattern(%d)", int(p))
}

// Access describes one array reference in the loop body.
type Access struct {
	Array   string     // name of the array, for diagnostics
	Kind    AccessKind // load or store
	Pattern Pattern
	Stride  int     // element stride for Strided/Transpose (0 = n/a)
	PerIter float64 // elements touched per innermost iteration (usually 1)
	Int     bool    // true if the array holds integers, not Floats
}

// Feature is a bitmask of vectorisation-relevant properties of a loop
// body. The auto-vectoriser rule engines key off these.
type Feature uint32

const (
	// SumReduction: the loop accumulates a sum (DAXPY-dot style).
	SumReduction Feature = 1 << iota
	// MinMaxReduction: the loop tracks a min/max, possibly with index.
	MinMaxReduction
	// MinMaxLoc: min/max reduction that also records the location
	// (FIRST_MIN); needs special last-index semantics to vectorise.
	MinMaxLoc
	// Conditional: the body contains an if (needs if-conversion /
	// masking to vectorise).
	Conditional
	// Indirection: a[idx[i]] gather or scatter.
	Indirection
	// LoopCarried: a true dependence carried by the innermost loop
	// (recurrences like GEN_LIN_RECUR, TRIDIAG back-substitution).
	LoopCarried
	// Scan: prefix-sum dependence (vectorisable only with special
	// scan support, which neither modelled compiler auto-generates).
	Scan
	// SortBody: the loop is a sorting network / comparison sort.
	SortBody
	// Atomic: the body performs an atomic update.
	Atomic
	// FunctionCall: the body calls a libm routine (exp, pow, sqrt ...).
	FunctionCall
	// NonUnitStride: dominant accesses are non-unit stride.
	NonUnitStride
	// OuterLoopReuse: the profitable vectorisation target is an outer
	// loop (matmul-style nests); inner-loop-only vectorisers punt or
	// produce code their cost model then rejects.
	OuterLoopReuse
	// PotentialAlias: the compiler cannot prove the arrays distinct and
	// must emit a runtime alias/overlap check; if the check is
	// pessimistic the scalar fallback path executes at runtime.
	PotentialAlias
	// ShortTrip: the innermost trip count is small at the default
	// problem size, so versioned vector loops fall through to the
	// scalar remainder at runtime.
	ShortTrip
	// MixedTypes: the body mixes integer and float element types in a
	// way that forces conversions inside the loop.
	MixedTypes
	// MultiExit: the loop has a data-dependent early exit.
	MultiExit
)

var featureNames = []struct {
	f Feature
	s string
}{
	{SumReduction, "sum-reduction"},
	{MinMaxReduction, "minmax-reduction"},
	{MinMaxLoc, "minmax-loc"},
	{Conditional, "conditional"},
	{Indirection, "indirection"},
	{LoopCarried, "loop-carried"},
	{Scan, "scan"},
	{SortBody, "sort"},
	{Atomic, "atomic"},
	{FunctionCall, "libm-call"},
	{NonUnitStride, "non-unit-stride"},
	{OuterLoopReuse, "outer-loop-reuse"},
	{PotentialAlias, "potential-alias"},
	{ShortTrip, "short-trip"},
	{MixedTypes, "mixed-types"},
	{MultiExit, "multi-exit"},
}

// Has reports whether f contains all bits of q.
func (f Feature) Has(q Feature) bool { return f&q == q }

// HasAny reports whether f contains any bit of q.
func (f Feature) HasAny(q Feature) bool { return f&q != 0 }

// String renders the feature set as a |-separated list.
func (f Feature) String() string {
	if f == 0 {
		return "none"
	}
	var parts []string
	for _, fn := range featureNames {
		if f.Has(fn.f) {
			parts = append(parts, fn.s)
		}
	}
	return strings.Join(parts, "|")
}

// Loop describes one kernel's hot loop nest.
type Loop struct {
	Kernel   string // kernel name, e.g. "TRIAD"
	Nest     int    // loop nest depth (1 for streams, 3 for GEMM)
	Features Feature

	// FlopsPerIter is the floating-point operations per innermost
	// iteration (an FMA counts as 2).
	FlopsPerIter float64
	// IntOpsPerIter is integer ALU work per innermost iteration beyond
	// address arithmetic (sorting, index lists).
	IntOpsPerIter float64

	Accesses []Access
}

// LoadsPerIter sums the float elements loaded per innermost iteration.
func (l Loop) LoadsPerIter() float64 { return l.elems(Load, false) }

// StoresPerIter sums the float elements stored per innermost iteration.
func (l Loop) StoresPerIter() float64 { return l.elems(Store, false) }

// IntLoadsPerIter sums integer elements loaded per innermost iteration.
func (l Loop) IntLoadsPerIter() float64 { return l.elems(Load, true) }

// IntStoresPerIter sums integer elements stored per innermost iteration.
func (l Loop) IntStoresPerIter() float64 { return l.elems(Store, true) }

func (l Loop) elems(kind AccessKind, integer bool) float64 {
	s := 0.0
	for _, a := range l.Accesses {
		if a.Kind == kind && a.Int == integer && a.Pattern != Broadcast {
			s += a.PerIter
		}
	}
	return s
}

// DominantPattern returns the pattern moving the most elements per
// iteration (ignoring Broadcast, which stays cache-resident).
func (l Loop) DominantPattern() Pattern {
	best, bestN := Unit, -1.0
	for _, a := range l.Accesses {
		if a.Pattern == Broadcast {
			continue
		}
		if a.PerIter > bestN {
			best, bestN = a.Pattern, a.PerIter
		}
	}
	return best
}

// Validate checks internal consistency; kernel registration calls it.
func (l Loop) Validate() error {
	if l.Kernel == "" {
		return fmt.Errorf("ir: loop has no kernel name")
	}
	if l.Nest < 1 {
		return fmt.Errorf("ir: %s: nest depth %d < 1", l.Kernel, l.Nest)
	}
	if l.FlopsPerIter < 0 || l.IntOpsPerIter < 0 {
		return fmt.Errorf("ir: %s: negative op counts", l.Kernel)
	}
	if len(l.Accesses) == 0 {
		return fmt.Errorf("ir: %s: no accesses", l.Kernel)
	}
	for i, a := range l.Accesses {
		if a.PerIter < 0 {
			return fmt.Errorf("ir: %s: access %d (%s) negative PerIter", l.Kernel, i, a.Array)
		}
		if (a.Pattern == Strided || a.Pattern == Transpose) && a.Stride == 0 {
			return fmt.Errorf("ir: %s: access %d (%s) %v needs a stride", l.Kernel, i, a.Array, a.Pattern)
		}
	}
	return nil
}
