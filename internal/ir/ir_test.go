package ir

import (
	"strings"
	"testing"
	"testing/quick"
)

func triadLoop() Loop {
	return Loop{
		Kernel:       "TRIAD",
		Nest:         1,
		FlopsPerIter: 2,
		Accesses: []Access{
			{Array: "b", Kind: Load, Pattern: Unit, PerIter: 1},
			{Array: "c", Kind: Load, Pattern: Unit, PerIter: 1},
			{Array: "a", Kind: Store, Pattern: Unit, PerIter: 1},
		},
	}
}

func TestLoopCounters(t *testing.T) {
	l := triadLoop()
	if got := l.LoadsPerIter(); got != 2 {
		t.Errorf("LoadsPerIter = %v, want 2", got)
	}
	if got := l.StoresPerIter(); got != 1 {
		t.Errorf("StoresPerIter = %v, want 1", got)
	}
	if got := l.IntLoadsPerIter(); got != 0 {
		t.Errorf("IntLoadsPerIter = %v, want 0", got)
	}
}

func TestBroadcastExcluded(t *testing.T) {
	l := triadLoop()
	l.Accesses = append(l.Accesses, Access{Array: "coef", Kind: Load, Pattern: Broadcast, PerIter: 3})
	if got := l.LoadsPerIter(); got != 2 {
		t.Errorf("broadcast loads must not count as traffic: got %v", got)
	}
	if got := l.DominantPattern(); got != Unit {
		t.Errorf("DominantPattern = %v, want Unit", got)
	}
}

func TestIntAccessesSeparated(t *testing.T) {
	l := Loop{
		Kernel: "INDEXLIST", Nest: 1, FlopsPerIter: 0, IntOpsPerIter: 2,
		Accesses: []Access{
			{Array: "x", Kind: Load, Pattern: Unit, PerIter: 1},
			{Array: "list", Kind: Store, Pattern: Unit, PerIter: 1, Int: true},
		},
	}
	if l.StoresPerIter() != 0 {
		t.Error("int store counted as float store")
	}
	if l.IntStoresPerIter() != 1 {
		t.Error("int store missing from IntStoresPerIter")
	}
}

func TestDominantPattern(t *testing.T) {
	l := Loop{
		Kernel: "MVT", Nest: 2, FlopsPerIter: 2,
		Accesses: []Access{
			{Array: "A", Kind: Load, Pattern: Transpose, Stride: 1000, PerIter: 2},
			{Array: "x", Kind: Load, Pattern: Unit, PerIter: 1},
		},
	}
	if got := l.DominantPattern(); got != Transpose {
		t.Errorf("DominantPattern = %v, want Transpose", got)
	}
}

func TestFeatureBits(t *testing.T) {
	f := SumReduction | Conditional
	if !f.Has(SumReduction) || !f.Has(Conditional) {
		t.Error("Has failed on set bits")
	}
	if f.Has(SumReduction | Indirection) {
		t.Error("Has must require all bits")
	}
	if !f.HasAny(Indirection | Conditional) {
		t.Error("HasAny failed")
	}
	if f.HasAny(Indirection | Scan) {
		t.Error("HasAny false positive")
	}
	s := f.String()
	if !strings.Contains(s, "sum-reduction") || !strings.Contains(s, "conditional") {
		t.Errorf("Feature.String = %q", s)
	}
	if Feature(0).String() != "none" {
		t.Errorf("empty feature string = %q", Feature(0).String())
	}
}

func TestFeatureHasAnyConsistency(t *testing.T) {
	// Property: f.Has(q) implies f.HasAny(q) for non-empty q.
	f := func(a, b uint32) bool {
		fa, fb := Feature(a), Feature(b)
		if fb == 0 {
			return true
		}
		if fa.Has(fb) && !fa.HasAny(fb) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValidate(t *testing.T) {
	good := triadLoop()
	if err := good.Validate(); err != nil {
		t.Errorf("valid loop rejected: %v", err)
	}

	bad := good
	bad.Kernel = ""
	if err := bad.Validate(); err == nil {
		t.Error("empty kernel name accepted")
	}

	bad = good
	bad.Nest = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero nest accepted")
	}

	bad = good
	bad.Accesses = nil
	if err := bad.Validate(); err == nil {
		t.Error("no accesses accepted")
	}

	bad = triadLoop()
	bad.Accesses[0].Pattern = Strided // stride 0
	if err := bad.Validate(); err == nil {
		t.Error("strided access without stride accepted")
	}

	bad = triadLoop()
	bad.FlopsPerIter = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative flops accepted")
	}

	bad = triadLoop()
	bad.Accesses[0].PerIter = -2
	if err := bad.Validate(); err == nil {
		t.Error("negative PerIter accepted")
	}
}

func TestPatternStrings(t *testing.T) {
	for p := Unit; p <= Broadcast; p++ {
		if s := p.String(); s == "" || strings.HasPrefix(s, "Pattern(") {
			t.Errorf("pattern %d has no name", int(p))
		}
	}
	if Load.String() != "load" || Store.String() != "store" {
		t.Error("AccessKind strings wrong")
	}
}
