// Package rollback translates RVV v1.0 programs to RVV v0.7.1, standing
// in for the RVV-Rollback tool ([10]/[11]) the paper uses: "To enable
// experimentation with Clang we leveraged the RVV-rollback tool which
// operates upon RVV v1.0 assembly and rewrites it to backport it to RVV
// v0.7.1". The Clang-shaped v1.0 output of internal/rvv's code
// generators becomes executable on a v0.7.1 (C920-like) VM through this
// package, which is exactly the paper's toolchain pipeline.
//
// Translation rules (mirroring the real tool's core rewrites):
//
//   - vsetvli: drop the ta/ma policy tokens (v0.7.1 has no vtype policy
//     bits; tails are always undisturbed). Rolling back a tail-agnostic
//     program is safe because undisturbed tails are one of the
//     behaviours a tail-agnostic program must already tolerate.
//   - vle32.v/vse32.v -> vlw.v/vsw.v (typed 32-bit load/store).
//   - vle64.v/vse64.v -> vle.v/vse.v (SEW-sized load/store; requires
//     the governing vtype SEW to be 64, which the translator verifies
//     by tracking vsetvli flow).
//   - Arithmetic/config mnemonics shared by the dialects pass through.
//
// Untranslatable v1.0 constructs are rejected with a diagnostic, as the
// real tool does: fractional LMUL (mf2/mf4/mf8) and whole-register
// load/store/move (vl1r.v/vs1r.v/vmv1r.v) have no v0.7.1 equivalent.
package rollback

import (
	"fmt"

	"repro/internal/rvv"
)

// Error describes why a program cannot be rolled back.
type Error struct {
	Index  int // instruction index
	Reason string
}

func (e *Error) Error() string {
	return fmt.Sprintf("rollback: inst %d: %s", e.Index, e.Reason)
}

// Translate rewrites a v1.0 program into a v0.7.1 program, or returns
// an *Error for untranslatable constructs.
func Translate(p *rvv.Program) (*rvv.Program, error) {
	if p.Dialect != rvv.V10 {
		return nil, fmt.Errorf("rollback: input must be RVV v1.0, got %v", p.Dialect)
	}
	out := &rvv.Program{Dialect: rvv.V071, Insts: make([]rvv.Inst, len(p.Insts))}

	// Track the SEW each straight-line region executes under, so the
	// 64-bit load rewrite can be checked. Branch targets reset to
	// unknown (conservative join).
	const sewUnknown = 0
	sewAt := make([]int, len(p.Insts)+1)
	branchTarget := make([]bool, len(p.Insts)+1)
	for _, in := range p.Insts {
		switch in.Op {
		case rvv.OpBNEZ, rvv.OpBEQZ, rvv.OpBGE, rvv.OpBLT, rvv.OpJ:
			branchTarget[in.Target] = true
		}
	}
	sew := sewUnknown

	for i, in := range p.Insts {
		if branchTarget[i] {
			// Conservatively keep the last seen SEW: vsetvli dominates
			// loop headers in compiler-emitted code; a mismatch is
			// caught when a typed load disagrees below.
			sewAt[i] = sew
		}
		t := in // copy
		switch in.Op {
		case rvv.OpVSETVLI:
			if in.LMUL < 1 {
				return nil, &Error{i, fmt.Sprintf(
					"fractional LMUL mf%d has no RVV v0.7.1 equivalent", -in.LMUL)}
			}
			t.TA, t.MA = false, false // strip policy bits
			sew = in.SEW
		case rvv.OpVL1R, rvv.OpVS1R, rvv.OpVMV1R:
			return nil, &Error{i, "whole-register instructions have no RVV v0.7.1 equivalent"}
		case rvv.OpVLE32:
			t.Op = rvv.OpVLW
		case rvv.OpVSE32:
			t.Op = rvv.OpVSW
		case rvv.OpVLE64:
			if sew != 64 && sew != sewUnknown {
				return nil, &Error{i, fmt.Sprintf(
					"vle64.v under SEW=%d cannot map to the SEW-sized vle.v", sew)}
			}
			t.Op = rvv.OpVLE
		case rvv.OpVSE64:
			if sew != 64 && sew != sewUnknown {
				return nil, &Error{i, fmt.Sprintf(
					"vse64.v under SEW=%d cannot map to the SEW-sized vse.v", sew)}
			}
			t.Op = rvv.OpVSE
		}
		out.Insts[i] = t
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("rollback: produced invalid v0.7.1 program: %w", err)
	}
	return out, nil
}

// TranslateText assembles v1.0 source, rolls it back, and returns the
// v0.7.1 assembly text (the CLI pipeline of the real tool).
func TranslateText(src string) (string, error) {
	p, err := rvv.Assemble(src, rvv.V10)
	if err != nil {
		return "", fmt.Errorf("rollback: input does not assemble as RVV v1.0: %w", err)
	}
	out, err := Translate(p)
	if err != nil {
		return "", err
	}
	return out.Format(), nil
}
