package rollback

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/rvv"
)

const (
	dstAddr  = 0x1000
	src1Addr = 0x8000
	src2Addr = 0x10000
	outAddr  = 0x18000
	memSize  = 0x20000
)

func randVec(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Round((rng.Float64()*4-2)*16) / 16
	}
	return out
}

// runOn executes a program on a fresh VM of the program's dialect and
// returns dst (or out for KDot).
func runOn(t *testing.T, p *rvv.Program, k rvv.GenKernel, sew, n int,
	alpha float64, src1, src2, dst0 []float64) []float64 {
	t.Helper()
	vm, err := rvv.NewVM(p.Dialect, 128, memSize)
	if err != nil {
		t.Fatal(err)
	}
	sz := sew / 8
	vm.WriteFloats(src1Addr, src1, sz)
	if src2 != nil {
		vm.WriteFloats(src2Addr, src2, sz)
	}
	if dst0 != nil {
		vm.WriteFloats(dstAddr, dst0, sz)
	}
	vm.X[10], vm.X[11], vm.X[12], vm.X[13], vm.X[14] =
		int64(n), dstAddr, src1Addr, src2Addr, outAddr
	vm.F[10] = alpha
	if err := vm.Run(p, 10_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	if k == rvv.KDot {
		out, _ := vm.ReadFloats(outAddr, 1, sz)
		return out
	}
	out, _ := vm.ReadFloats(dstAddr, n, sz)
	return out
}

func TestRoundTripSemanticEquivalence(t *testing.T) {
	// The paper's pipeline: Clang-shaped v1.0 code -> rollback ->
	// execute on a v0.7.1 core. Results must match the original v1.0
	// execution for every kernel, SEW and mode.
	kernels := []rvv.GenKernel{rvv.KCopy, rvv.KScale, rvv.KAdd, rvv.KTriad, rvv.KDaxpy, rvv.KDot}
	for _, k := range kernels {
		for _, sew := range []int{32, 64} {
			for _, mode := range []rvv.GenMode{rvv.ModeVLS, rvv.ModeVLA} {
				for _, n := range []int{1, 4, 7, 33, 100} {
					cfg := rvv.GenConfig{Dialect: rvv.V10, SEW: sew, Mode: mode, VLEN: 128}
					_, p10, err := rvv.Generate(k, cfg)
					if err != nil {
						t.Fatal(err)
					}
					p071, err := Translate(p10)
					if err != nil {
						t.Fatalf("%v/%v/e%d: rollback failed: %v", k, mode, sew, err)
					}
					src1, src2, dst0 := randVec(n, 1), randVec(n, 2), randVec(n, 3)
					want := runOn(t, p10, k, sew, n, 1.25, src1, src2, dst0)
					got := runOn(t, p071, k, sew, n, 1.25, src1, src2, dst0)
					for i := range want {
						if math.Abs(got[i]-want[i]) > 1e-6 {
							t.Errorf("%v/%v/e%d n=%d: rolled-back[%d] = %v, v1.0 = %v",
								k, mode, sew, n, i, got[i], want[i])
							break
						}
					}
				}
			}
		}
	}
}

func TestMnemonicRewrites(t *testing.T) {
	out, err := TranslateText(`
	vsetvli t0, a0, e32, m1, ta, ma
	vle32.v v1, (a2)
	vfadd.vv v2, v1, v1
	vse32.v v2, (a1)
	halt`)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"vlw.v", "vsw.v"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s:\n%s", want, out)
		}
	}
	for _, banned := range []string{"vle32.v", "vse32.v", "ta", "ma"} {
		if strings.Contains(out, banned) {
			t.Errorf("output still contains v1.0 construct %q:\n%s", banned, out)
		}
	}
}

func Test64BitRewrites(t *testing.T) {
	out, err := TranslateText(`
	vsetvli t0, a0, e64, m1, ta, ma
	vle64.v v1, (a2)
	vse64.v v1, (a1)
	halt`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "vle.v") || !strings.Contains(out, "vse.v") {
		t.Errorf("64-bit ops should map to SEW-sized vle.v/vse.v:\n%s", out)
	}
}

func TestUntranslatableConstructs(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"fractional LMUL", "\tvsetvli t0, a0, e32, mf2, ta, ma\n\thalt"},
		{"whole-register load", "\tvl1r.v v1, (a1)\n\thalt"},
		{"whole-register store", "\tvs1r.v v1, (a1)\n\thalt"},
		{"whole-register move", "\tvmv1r.v v1, v2\n\thalt"},
		{"vle64 under e32", "\tvsetvli t0, a0, e32, m1, ta, ma\n\tvle64.v v1, (a1)\n\thalt"},
	}
	for _, c := range cases {
		if _, err := TranslateText(c.src); err == nil {
			t.Errorf("%s: expected rollback rejection", c.name)
		}
	}
}

func TestErrorCarriesInstructionIndex(t *testing.T) {
	p, err := rvv.Assemble("\tli a0, 1\n\tvsetvli t0, a0, e32, mf4, ta, ma\n\thalt", rvv.V10)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Translate(p)
	var rbErr *Error
	if e, ok := err.(*Error); ok {
		rbErr = e
	}
	if rbErr == nil {
		t.Fatalf("expected *Error, got %v", err)
	}
	if rbErr.Index != 1 {
		t.Errorf("error index = %d, want 1", rbErr.Index)
	}
	if rbErr.Error() == "" {
		t.Error("empty error text")
	}
}

func TestRejectsNonV10Input(t *testing.T) {
	p, err := rvv.Assemble("\tvlw.v v1, (a1)\n\thalt", rvv.V071)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Translate(p); err == nil {
		t.Error("v0.7.1 input accepted")
	}
	if _, err := TranslateText("\tgarbage x1"); err == nil {
		t.Error("unassemblable input accepted")
	}
}

func TestOutputAlwaysValidV071(t *testing.T) {
	// Property: for any generated kernel program, rollback output
	// validates as v0.7.1 and contains no v1.0-only opcodes.
	kernels := []rvv.GenKernel{rvv.KCopy, rvv.KScale, rvv.KAdd, rvv.KTriad, rvv.KDaxpy, rvv.KDot}
	f := func(ki, si, mi uint8) bool {
		k := kernels[int(ki)%len(kernels)]
		sew := []int{32, 64}[int(si)%2]
		mode := []rvv.GenMode{rvv.ModeVLS, rvv.ModeVLA}[int(mi)%2]
		_, p, err := rvv.Generate(k, rvv.GenConfig{Dialect: rvv.V10, SEW: sew, Mode: mode, VLEN: 128})
		if err != nil {
			return false
		}
		out, err := Translate(p)
		if err != nil {
			return false
		}
		if out.Dialect != rvv.V071 {
			return false
		}
		return out.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
