// Package stats provides the small statistical toolkit the study uses:
// arithmetic and geometric means, min/max summaries, parallel efficiency,
// and the signed-ratio transform the paper's figures are plotted in
// ("zero means the same performance, +N means N times faster, -N means
// N times slower").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All inputs must be positive;
// non-positive values are skipped (matching how benchmark summaries treat
// failed runs). Returns 0 for an empty or all-skipped slice.
func GeoMean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		s += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// StdDev returns the sample standard deviation of xs (0 when len < 2).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// SignedRatio converts a performance ratio r (baseline time / test time,
// so r > 1 means the test configuration is faster) into the signed scale
// used by the paper's figures:
//
//	r = 1   ->  0   (same performance)
//	r = 2   -> +1   ("one time faster", i.e. double)
//	r = 0.5 -> -1   ("twice as slow")
//
// The transform is antisymmetric: SignedRatio(1/r) == -SignedRatio(r).
func SignedRatio(r float64) float64 {
	if r <= 0 || math.IsNaN(r) {
		return math.NaN()
	}
	if r >= 1 {
		return r - 1
	}
	return 1 - 1/r
}

// RatioFromSigned inverts SignedRatio.
func RatioFromSigned(v float64) float64 {
	if v >= 0 {
		return v + 1
	}
	return 1 / (1 - v)
}

// Speedup returns t1/tn, the paper's definition of speed up (execution
// time on one thread divided by execution time on n threads).
func Speedup(t1, tn float64) float64 {
	if tn <= 0 {
		return math.NaN()
	}
	return t1 / tn
}

// ParallelEfficiency returns speedup/threads, which "ranges from 1 to 0,
// where 1 is optimal" (footnote 3 of the paper). Super-linear speedups
// (Table 3 reports PE 1.40 for Stream at 8 threads) are preserved, not
// clamped.
func ParallelEfficiency(speedup float64, threads int) float64 {
	if threads <= 0 {
		return math.NaN()
	}
	return speedup / float64(threads)
}

// Summary aggregates a set of per-kernel ratios into the form the
// paper's bar-and-whisker figures report for one benchmark class: the
// class average plus the maximum and minimum ratios.
type Summary struct {
	N    int     // number of kernels aggregated
	Mean float64 // average ratio across the class
	Min  float64 // minimum ratio (bottom of the whisker)
	Max  float64 // maximum ratio (top of the whisker)
}

// Summarize builds a Summary from raw (unsigned) performance ratios.
func Summarize(ratios []float64) Summary {
	if len(ratios) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(ratios),
		Mean: Mean(ratios),
		Min:  Min(ratios),
		Max:  Max(ratios),
	}
}

// SignedMean is the class-average bar height on the paper's signed scale.
func (s Summary) SignedMean() float64 { return SignedRatio(s.Mean) }

// SignedMin is the bottom whisker on the signed scale.
func (s Summary) SignedMin() float64 { return SignedRatio(s.Min) }

// SignedMax is the top whisker on the signed scale.
func (s Summary) SignedMax() float64 { return SignedRatio(s.Max) }

// String renders the summary in a compact "mean [min, max]" form.
func (s Summary) String() string {
	return fmt.Sprintf("%.2f [%.2f, %.2f] (n=%d)", s.Mean, s.Min, s.Max, s.N)
}
