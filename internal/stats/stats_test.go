package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{4}, 4},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.xs); got != c.want {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4}); !almostEq(got, 2, 1e-12) {
		t.Errorf("GeoMean(1,4) = %v, want 2", got)
	}
	if got := GeoMean([]float64{2, 2, 2}); !almostEq(got, 2, 1e-12) {
		t.Errorf("GeoMean(2,2,2) = %v, want 2", got)
	}
	// Non-positive entries are skipped.
	if got := GeoMean([]float64{-5, 0, 8, 2}); !almostEq(got, 4, 1e-12) {
		t.Errorf("GeoMean skipping nonpositive = %v, want 4", got)
	}
	if got := GeoMean(nil); got != 0 {
		t.Errorf("GeoMean(nil) = %v, want 0", got)
	}
}

func TestMinMaxMedian(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if got := Min(xs); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v", got)
	}
	if got := Median(xs); got != 3 {
		t.Errorf("Median odd = %v", got)
	}
	if got := Median([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Median even = %v", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +/-Inf")
	}
}

func TestStdDev(t *testing.T) {
	if got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9}); !almostEq(got, 2.138, 1e-3) {
		t.Errorf("StdDev = %v", got)
	}
	if got := StdDev([]float64{1}); got != 0 {
		t.Errorf("StdDev single = %v", got)
	}
}

func TestSignedRatioAnchors(t *testing.T) {
	// The paper's scale: 0 = same, +1 = double performance, -1 = half.
	cases := []struct{ r, want float64 }{
		{1, 0},
		{2, 1},
		{0.5, -1},
		{40, 39}, // "memory set ... ran 40 times faster"
		{0.25, -3},
	}
	for _, c := range cases {
		if got := SignedRatio(c.r); !almostEq(got, c.want, 1e-12) {
			t.Errorf("SignedRatio(%v) = %v, want %v", c.r, got, c.want)
		}
	}
	if !math.IsNaN(SignedRatio(0)) || !math.IsNaN(SignedRatio(-1)) {
		t.Error("SignedRatio of non-positive ratios should be NaN")
	}
}

func TestSignedRatioAntisymmetry(t *testing.T) {
	f := func(x float64) bool {
		r := math.Abs(x)
		if r < 1e-6 || r > 1e6 || math.IsNaN(r) {
			return true // outside the meaningful domain
		}
		return almostEq(SignedRatio(1/r), -SignedRatio(r), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignedRatioRoundTrip(t *testing.T) {
	f := func(x float64) bool {
		r := math.Abs(x)
		if r < 1e-6 || r > 1e6 || math.IsNaN(r) {
			return true
		}
		return almostEq(RatioFromSigned(SignedRatio(r)), r, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSignedRatioMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		ra, rb := math.Abs(a), math.Abs(b)
		if ra < 1e-6 || rb < 1e-6 || ra > 1e6 || rb > 1e6 {
			return true
		}
		if ra > rb {
			ra, rb = rb, ra
		}
		return SignedRatio(ra) <= SignedRatio(rb)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedupAndEfficiency(t *testing.T) {
	s := Speedup(10, 2.5)
	if s != 4 {
		t.Errorf("Speedup = %v, want 4", s)
	}
	if pe := ParallelEfficiency(s, 8); pe != 0.5 {
		t.Errorf("PE = %v, want 0.5", pe)
	}
	// Super-linear PE must not be clamped (Table 3 reports 1.40).
	if pe := ParallelEfficiency(11.2, 8); !almostEq(pe, 1.4, 1e-12) {
		t.Errorf("super-linear PE = %v, want 1.4", pe)
	}
	if !math.IsNaN(Speedup(1, 0)) {
		t.Error("Speedup with zero time should be NaN")
	}
	if !math.IsNaN(ParallelEfficiency(1, 0)) {
		t.Error("PE with zero threads should be NaN")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{2, 4, 8})
	if s.N != 3 || s.Min != 2 || s.Max != 8 {
		t.Errorf("Summarize basic fields wrong: %+v", s)
	}
	if !almostEq(s.Mean, 14.0/3, 1e-12) {
		t.Errorf("Summarize mean = %v", s.Mean)
	}
	if !almostEq(s.SignedMin(), 1, 1e-12) || !almostEq(s.SignedMax(), 7, 1e-12) {
		t.Errorf("signed whiskers wrong: %v %v", s.SignedMin(), s.SignedMax())
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Errorf("empty summary N = %d", empty.N)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestSummaryWhiskersBracketMean(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			r := math.Abs(x)
			if r > 1e-6 && r < 1e6 && !math.IsNaN(r) {
				xs = append(xs, r)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
