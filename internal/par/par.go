// Package par is the small concurrency toolkit under the study engine:
// a bounded errgroup-style Group with first-error cancellation, and an
// indexed ForEach worker pool. Callers write results into slot i of a
// pre-sized slice, so output ordering never depends on scheduling and
// the serial (workers <= 1) and parallel paths produce identical
// results.
package par

import (
	"sync"
	"sync/atomic"
)

// Group runs tasks on a bounded number of goroutines. The first error
// wins: it is returned from Wait, and tasks scheduled (or dequeued)
// after it are dropped.
type Group struct {
	sem  chan struct{}
	wg   sync.WaitGroup
	once sync.Once
	err  error
	stop atomic.Bool
}

// NewGroup returns a Group running at most workers tasks concurrently;
// workers < 1 means unbounded.
func NewGroup(workers int) *Group {
	g := &Group{}
	if workers > 0 {
		g.sem = make(chan struct{}, workers)
	}
	return g
}

// Go schedules f on the group, blocking while all workers are busy. If
// a previous task has already failed, f is silently dropped — the
// errgroup-style cancellation that lets a failing experiment stop the
// rest of the batch.
func (g *Group) Go(f func() error) {
	if g.stop.Load() {
		return
	}
	if g.sem != nil {
		g.sem <- struct{}{}
	}
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		if g.sem != nil {
			defer func() { <-g.sem }()
		}
		if g.stop.Load() {
			return
		}
		if err := f(); err != nil {
			g.once.Do(func() { g.err = err })
			g.stop.Store(true)
		}
	}()
}

// Cancelled reports whether a task has failed; long-running tasks may
// poll it to bail out early.
func (g *Group) Cancelled() bool { return g.stop.Load() }

// Wait blocks until every scheduled task has finished and returns the
// first error.
func (g *Group) Wait() error {
	g.wg.Wait()
	return g.err
}

// ForEach invokes fn(i) for every i in [0, n) using at most workers
// goroutines and returns the first error; remaining indices are skipped
// once a call fails. With workers <= 1 (or n <= 1) it runs inline, in
// order, on the calling goroutine — no scheduling, no goroutines — so a
// deterministic fn gives bit-identical results on both paths.
func ForEach(n, workers int, fn func(i int) error) error {
	if workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	if workers > n {
		workers = n
	}
	g := NewGroup(workers)
	var next atomic.Int64
	for w := 0; w < workers; w++ {
		g.Go(func() error {
			for {
				i := int(next.Add(1)) - 1
				if i >= n || g.Cancelled() {
					return nil
				}
				if err := fn(i); err != nil {
					return err
				}
			}
		})
	}
	return g.Wait()
}
