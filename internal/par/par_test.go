package par

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestForEachSerialMatchesParallel(t *testing.T) {
	const n = 100
	for _, workers := range []int{0, 1, 2, 4, 16, 200} {
		out := make([]int, n)
		err := ForEach(n, workers, func(i int) error {
			out[i] = i * i
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range out {
			if out[i] != i*i {
				t.Fatalf("workers=%d: slot %d = %d", workers, i, out[i])
			}
		}
	}
}

func TestForEachZeroItems(t *testing.T) {
	called := false
	if err := ForEach(0, 4, func(int) error { called = true; return nil }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("fn called for n=0")
	}
}

func TestForEachFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	err := ForEach(50, 4, func(i int) error {
		if i == 7 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("got %v, want boom", err)
	}
}

func TestForEachSerialStopsAtFirstError(t *testing.T) {
	var calls int
	err := ForEach(50, 1, func(i int) error {
		calls++
		if i == 3 {
			return fmt.Errorf("stop at %d", i)
		}
		return nil
	})
	if err == nil || calls != 4 {
		t.Fatalf("err=%v calls=%d, want error after 4 calls", err, calls)
	}
}

func TestForEachCancellationSkipsRemaining(t *testing.T) {
	// With 1000 items on 2 workers, an early failure must prevent most
	// of the tail from running.
	var calls atomic.Int64
	err := ForEach(1000, 2, func(i int) error {
		calls.Add(1)
		if i < 2 {
			return errors.New("early failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if c := calls.Load(); c > 100 {
		t.Errorf("%d calls ran after early cancellation", c)
	}
}

func TestForEachEveryIndexExactlyOnce(t *testing.T) {
	const n = 500
	counts := make([]atomic.Int32, n)
	if err := ForEach(n, 8, func(i int) error {
		counts[i].Add(1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

func TestGroupBoundsConcurrency(t *testing.T) {
	const workers = 3
	g := NewGroup(workers)
	var cur, peak atomic.Int32
	for i := 0; i < 30; i++ {
		g.Go(func() error {
			c := cur.Add(1)
			for {
				p := peak.Load()
				if c <= p || peak.CompareAndSwap(p, c) {
					break
				}
			}
			cur.Add(-1)
			return nil
		})
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Errorf("peak concurrency %d exceeds limit %d", p, workers)
	}
}

func TestGroupDropsAfterFailure(t *testing.T) {
	g := NewGroup(1)
	g.Go(func() error { return errors.New("first") })
	if err := g.Wait(); err == nil {
		t.Fatal("expected error")
	}
	ran := false
	g.Go(func() error { ran = true; return nil })
	if err := g.Wait(); err == nil || err.Error() != "first" {
		t.Fatalf("Wait = %v, want first error", err)
	}
	if ran {
		t.Error("task ran after group failure")
	}
}

func TestGroupUnbounded(t *testing.T) {
	g := NewGroup(0)
	var sum atomic.Int64
	for i := 1; i <= 10; i++ {
		g.Go(func() error { sum.Add(1); return nil })
	}
	if err := g.Wait(); err != nil {
		t.Fatal(err)
	}
	if sum.Load() != 10 {
		t.Errorf("ran %d tasks, want 10", sum.Load())
	}
}
