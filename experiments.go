package repro

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/placement"
	"repro/internal/prec"
	"repro/internal/report"
)

// Experiment names accepted by RunExperiment, in the paper's order.
var ExperimentNames = []string{
	"figure1", "table1", "table2", "table3",
	"figure2", "figure3", "table4",
	"figure4", "figure5", "figure6", "figure7",
}

// RunExperiment regenerates one of the paper's tables or figures and
// returns it rendered as text. Accepted names are listed in
// ExperimentNames; "all" concatenates every experiment.
func RunExperiment(name string) (string, error) {
	st := NewStudy()
	return runExperimentWith(st, strings.ToLower(strings.TrimSpace(name)))
}

// RunExperimentCSV is RunExperiment with CSV output (Table 4 has no CSV
// form and renders as text).
func RunExperimentCSV(name string) (string, error) {
	st := NewStudy()
	name = strings.ToLower(strings.TrimSpace(name))
	switch name {
	case "figure1":
		fig, err := st.Figure1()
		if err != nil {
			return "", err
		}
		return report.FigureCSV(fig), nil
	case "table1", "table2", "table3":
		tab, err := st.ScalingTable(tablePolicy(name))
		if err != nil {
			return "", err
		}
		return report.ScalingTableCSV(tab), nil
	case "figure2":
		fig, err := st.Figure2()
		if err != nil {
			return "", err
		}
		return report.FigureCSV(fig), nil
	case "figure3":
		kb, err := st.Figure3()
		if err != nil {
			return "", err
		}
		return report.KernelBarsCSV(kb), nil
	case "table4":
		return report.Table4Text(core.Table4()), nil
	case "figure4", "figure5", "figure6", "figure7":
		fig, err := xFigure(st, name)
		if err != nil {
			return "", err
		}
		return report.FigureCSV(fig), nil
	}
	return "", fmt.Errorf("repro: unknown experiment %q (want one of %s)",
		name, strings.Join(ExperimentNames, ", "))
}

func tablePolicy(name string) placement.Policy {
	switch name {
	case "table1":
		return placement.Block
	case "table2":
		return placement.CyclicNUMA
	default:
		return placement.ClusterCyclic
	}
}

func xFigure(st *Study, name string) (Figure, error) {
	switch name {
	case "figure4":
		return st.XCompare(prec.F64, false)
	case "figure5":
		return st.XCompare(prec.F32, false)
	case "figure6":
		return st.XCompare(prec.F64, true)
	default:
		return st.XCompare(prec.F32, true)
	}
}

func runExperimentWith(st *Study, name string) (string, error) {
	switch name {
	case "all":
		var b strings.Builder
		for _, n := range ExperimentNames {
			out, err := runExperimentWith(st, n)
			if err != nil {
				return "", err
			}
			b.WriteString(out)
			b.WriteString("\n")
		}
		return b.String(), nil
	case "figure1":
		fig, err := st.Figure1()
		if err != nil {
			return "", err
		}
		return report.FigureText(fig), nil
	case "table1", "table2", "table3":
		tab, err := st.ScalingTable(tablePolicy(name))
		if err != nil {
			return "", err
		}
		return report.ScalingTableText(tab), nil
	case "figure2":
		fig, err := st.Figure2()
		if err != nil {
			return "", err
		}
		return report.FigureText(fig), nil
	case "figure3":
		kb, err := st.Figure3()
		if err != nil {
			return "", err
		}
		return report.KernelBarsText(kb), nil
	case "table4":
		return report.Table4Text(core.Table4()), nil
	case "figure4", "figure5", "figure6", "figure7":
		fig, err := xFigure(st, name)
		if err != nil {
			return "", err
		}
		return report.FigureText(fig), nil
	}
	return "", fmt.Errorf("repro: unknown experiment %q (want one of %s, or all)",
		name, strings.Join(ExperimentNames, ", "))
}

// HeadlineSummary computes the headline comparisons from the paper's
// conclusions section as a compact text block: C920-vs-U74 factors and
// x86-vs-SG2042 factors at both precisions, single and multi-core.
func HeadlineSummary() (string, error) {
	st := NewStudy()
	st.Noise = 0
	st.Runs = 1
	var b strings.Builder

	fig1, err := st.Figure1()
	if err != nil {
		return "", err
	}
	b.WriteString("C920 vs U74 (VisionFive V2 FP64 baseline), class-average range:\n")
	for _, s := range fig1.Series {
		if !strings.HasPrefix(s.Label, "SG2042") {
			continue
		}
		var means []float64
		for _, sum := range s.ByClass {
			means = append(means, sum.Mean)
		}
		sort.Float64s(means)
		fmt.Fprintf(&b, "  %-12s %.1fx to %.1fx\n", s.Label, means[0], means[len(means)-1])
	}

	for _, mt := range []bool{false, true} {
		kind := "single-core"
		if mt {
			kind = "multithreaded"
		}
		for _, p := range []Precision{F64, F32} {
			fig, err := st.XCompare(p, mt)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "x86 vs SG2042, %s %v (grand mean across classes):\n", kind, p)
			for _, s := range fig.Series {
				sum, n := 0.0, 0
				for _, cs := range s.ByClass {
					sum += cs.Mean
					n++
				}
				fmt.Fprintf(&b, "  %-12s %.1fx\n", s.Label, sum/float64(n))
			}
		}
	}
	return b.String(), nil
}
