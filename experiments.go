package repro

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/placement"
	"repro/internal/prec"
	"repro/internal/report"
)

// Experiment names accepted by RunExperiment, in the paper's order.
var ExperimentNames = []string{
	"figure1", "table1", "table2", "table3",
	"figure2", "figure3", "table4",
	"figure4", "figure5", "figure6", "figure7",
}

// ExperimentInfo describes one of the paper's experiments for discovery
// surfaces (the -list flag, the HTTP list endpoint, godoc).
type ExperimentInfo struct {
	// Name is the identifier RunExperiment and the HTTP API accept.
	Name string `json:"name"`
	// Title is the rendered output's heading ("Figure 1: ...").
	Title string `json:"title"`
	// Desc says what the experiment reproduces from the paper.
	Desc string `json:"desc"`
	// CSV reports whether the experiment has a CSV form; Table 4 is the
	// one that renders as text even when CSV is requested.
	CSV bool `json:"csv"`
}

// experimentInfos is keyed in the order of ExperimentNames.
var experimentInfos = []ExperimentInfo{
	{"figure1", "Figure 1: single core comparison baselined against VisionFive V2 FP64",
		"single-core RISC-V comparison vs VisionFive V2 FP64", true},
	{"table1", "Table 1: speed up and parallel efficiency, block allocation",
		"SG2042 thread scaling under block placement", true},
	{"table2", "Table 2: speed up and parallel efficiency, cyclic allocation",
		"SG2042 thread scaling under cyclic-NUMA placement", true},
	{"table3", "Table 3: speed up and parallel efficiency, cluster-aware cyclic allocation",
		"SG2042 thread scaling under cluster-aware cyclic placement", true},
	{"figure2", "Figure 2: maximum single core speedup per class when enabling vectorisation on the C920",
		"C920 vectorisation speedup, vector vs scalar builds", true},
	{"figure3", "Figure 3: Clang VLA and VLS vs GCC, Polybench kernels, FP32, single core",
		"Clang VLA/VLS vs XuanTie GCC on the Polybench kernels", true},
	{"table4", "Table 4: Summary of x86 CPUs used to compare against the SG2042",
		"x86 comparator summary", false},
	{"figure4", "Figure 4: FP64 single core comparison against x86, baselined on the SG2042",
		"single-core x86 vs SG2042, FP64", true},
	{"figure5", "Figure 5: FP32 single core comparison against x86, baselined on the SG2042",
		"single-core x86 vs SG2042, FP32", true},
	{"figure6", "Figure 6: FP64 multithreaded comparison against x86, baselined on the SG2042",
		"multithreaded x86 vs SG2042, FP64", true},
	{"figure7", "Figure 7: FP32 multithreaded comparison against x86, baselined on the SG2042",
		"multithreaded x86 vs SG2042, FP32", true},
}

// Experiments returns metadata for every experiment, in the paper's
// order (the same order as ExperimentNames).
func Experiments() []ExperimentInfo {
	out := make([]ExperimentInfo, len(experimentInfos))
	copy(out, experimentInfos)
	return out
}

// ExperimentByName returns the metadata of one experiment ("all" is not
// an experiment; it is a batch of all of them).
func ExperimentByName(name string) (ExperimentInfo, bool) {
	name = canonExperiment(name)
	for _, info := range experimentInfos {
		if info.Name == name {
			return info, true
		}
	}
	return ExperimentInfo{}, false
}

// Options configures RunExperiments and NewEngine.
type Options struct {
	// Parallel is the global concurrency bound for the engine: when a
	// batch fans out, the experiment-level pool and the per-experiment
	// configuration fan-out together never exceed it. 0 picks
	// GOMAXPROCS; 1 runs everything serially on the calling goroutine.
	// Output is identical for every setting.
	Parallel int
	// CSV renders each experiment's CSV form instead of text (Table 4
	// has no CSV form and always renders as text).
	CSV bool
}

func (o Options) workers() int {
	if o.Parallel == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallel
}

// Engine is a long-lived experiment service: one memoized Study shared
// across requests, safe for concurrent use from many goroutines. The
// first request for a configuration evaluates it; every later
// experiment that needs the same configuration — in the same request or
// a concurrent one — is served from the cache, bit-identical.
type Engine struct {
	st   *Study
	opts Options
}

// NewEngine returns an Engine with the paper's study defaults.
func NewEngine(opts Options) *Engine {
	st := NewStudy()
	st.Workers = opts.workers()
	return &Engine{st: st, opts: opts}
}

// Run regenerates one experiment by name; "all" runs every experiment
// concatenated in the paper's order.
func (e *Engine) Run(name string) (string, error) {
	return e.RunFormat(name, e.opts.CSV)
}

// RunFormat is Run with an explicit output form, overriding the
// engine's Options.CSV for this request. A server negotiating the
// format per request uses it to keep one engine — and therefore one
// suite cache — across text and CSV clients.
func (e *Engine) RunFormat(name string, csv bool) (string, error) {
	name = canonExperiment(name)
	if name == "all" {
		return e.RunManyFormat(ExperimentNames, csv)
	}
	return renderExperiment(e.st, name, csv)
}

// RunMany regenerates the named experiments ("all" expands in place)
// over a bounded worker pool with first-error cancellation, and
// concatenates the outputs in the order the names were given — output
// ordering never depends on scheduling. Each experiment is followed by
// a blank separator line.
func (e *Engine) RunMany(names []string) (string, error) {
	return e.RunManyFormat(names, e.opts.CSV)
}

// RunManyFormat is RunMany with an explicit output form.
func (e *Engine) RunManyFormat(names []string, csv bool) (string, error) {
	return runMany(e.st, expandExperiments(names), csv, e.opts.workers())
}

// RunEach regenerates each named experiment ("all" expands in place)
// over the same bounded pool RunMany uses, but returns the outputs
// individually, aligned with the expanded name order. Batch endpoints
// use it to fan a request out while keeping per-experiment results
// addressable. The returned names are the canonicalized, expanded
// inputs.
func (e *Engine) RunEach(names []string, csv bool) (expanded []string, outs []string, err error) {
	expanded = expandExperiments(names)
	outs, err = runEach(e.st, expanded, csv, e.opts.workers())
	return expanded, outs, err
}

// CacheStats reports the engine's memoized suite lookups (hits served
// from the cache, misses evaluated).
func (e *Engine) CacheStats() (hits, misses uint64) { return e.st.CacheStats() }

// RunExperiment regenerates one of the paper's tables or figures and
// returns it rendered as text. Accepted names are listed in
// ExperimentNames; "all" concatenates every experiment. Evaluation is
// serial; use RunExperiments for the concurrent engine.
func RunExperiment(name string) (string, error) {
	st := NewStudy()
	return runExperimentWith(st, canonExperiment(name))
}

// RunExperiments regenerates the named experiments ("all" expands to
// every one) on a bounded worker pool shared with a memoized study, and
// returns their outputs concatenated in the order given. The result is
// byte-identical to running the same names serially.
func RunExperiments(names []string, opts Options) (string, error) {
	return NewEngine(opts).RunMany(names)
}

// RunExperimentCSV is RunExperiment with CSV output (Table 4 has no CSV
// form and renders as text); "all" concatenates every experiment's CSV.
func RunExperimentCSV(name string) (string, error) {
	st := NewStudy()
	name = canonExperiment(name)
	if name == "all" {
		return runMany(st, ExperimentNames, true, st.Workers)
	}
	return renderExperiment(st, name, true)
}

func canonExperiment(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// expandExperiments canonicalizes names and expands "all" in place.
func expandExperiments(names []string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		n = canonExperiment(n)
		if n == "all" {
			out = append(out, ExperimentNames...)
			continue
		}
		out = append(out, n)
	}
	return out
}

// runEach fans the named experiments out against one shared study;
// outs[i] keeps the caller's ordering stable regardless of completion
// order. workers is a global bound: it is split between the
// experiment-level pool and the per-experiment fan-out (outer *
// inner <= workers), so -parallel 8 never runs 8x8 goroutines.
func runEach(st *Study, names []string, csv bool, workers int) ([]string, error) {
	outer := workers
	if outer > len(names) {
		outer = len(names)
	}
	if outer < 1 {
		outer = 1
	}
	inner := workers / outer
	if inner < 1 {
		inner = 1
	}
	view := st.WithWorkers(inner)
	outs := make([]string, len(names))
	err := par.ForEach(len(names), outer, func(i int) error {
		out, err := renderExperiment(view, names[i], csv)
		if err != nil {
			return err
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return outs, nil
}

// runMany is runEach concatenated: each experiment followed by a blank
// separator line, in the order the names were given.
func runMany(st *Study, names []string, csv bool, workers int) (string, error) {
	outs, err := runEach(st, names, csv, workers)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, out := range outs {
		b.WriteString(out)
		b.WriteString("\n")
	}
	return b.String(), nil
}

func runExperimentWith(st *Study, name string) (string, error) {
	if name == "all" {
		return runMany(st, ExperimentNames, false, st.Workers)
	}
	return renderExperiment(st, name, false)
}

// renderExperiment evaluates one experiment against st and renders it
// as text or CSV — the single switch both RunExperiment flavours and
// the engine share.
func renderExperiment(st *Study, name string, csv bool) (string, error) {
	switch name {
	case "figure1":
		fig, err := st.Figure1()
		if err != nil {
			return "", err
		}
		return figureOut(fig, csv), nil
	case "table1", "table2", "table3":
		tab, err := st.ScalingTable(tablePolicy(name))
		if err != nil {
			return "", err
		}
		if csv {
			return report.ScalingTableCSV(tab), nil
		}
		return report.ScalingTableText(tab), nil
	case "figure2":
		fig, err := st.Figure2()
		if err != nil {
			return "", err
		}
		return figureOut(fig, csv), nil
	case "figure3":
		kb, err := st.Figure3()
		if err != nil {
			return "", err
		}
		if csv {
			return report.KernelBarsCSV(kb), nil
		}
		return report.KernelBarsText(kb), nil
	case "table4":
		return report.Table4Text(core.Table4()), nil
	case "figure4", "figure5", "figure6", "figure7":
		fig, err := xFigure(st, name)
		if err != nil {
			return "", err
		}
		return figureOut(fig, csv), nil
	}
	return "", fmt.Errorf("repro: unknown experiment %q (want one of %s, or all)",
		name, strings.Join(ExperimentNames, ", "))
}

func figureOut(fig Figure, csv bool) string {
	if csv {
		return report.FigureCSV(fig)
	}
	return report.FigureText(fig)
}

func tablePolicy(name string) placement.Policy {
	switch name {
	case "table1":
		return placement.Block
	case "table2":
		return placement.CyclicNUMA
	default:
		return placement.ClusterCyclic
	}
}

func xFigure(st *Study, name string) (Figure, error) {
	switch name {
	case "figure4":
		return st.XCompare(prec.F64, false)
	case "figure5":
		return st.XCompare(prec.F32, false)
	case "figure6":
		return st.XCompare(prec.F64, true)
	default:
		return st.XCompare(prec.F32, true)
	}
}

// HeadlineSummary computes the headline comparisons from the paper's
// conclusions section as a compact text block: C920-vs-U74 factors and
// x86-vs-SG2042 factors at both precisions, single and multi-core.
func HeadlineSummary() (string, error) {
	st := NewStudy()
	st.Noise = 0
	st.Runs = 1
	var b strings.Builder

	fig1, err := st.Figure1()
	if err != nil {
		return "", err
	}
	b.WriteString("C920 vs U74 (VisionFive V2 FP64 baseline), class-average range:\n")
	for _, s := range fig1.Series {
		if !strings.HasPrefix(s.Label, "SG2042") {
			continue
		}
		var means []float64
		for _, sum := range s.ByClass {
			means = append(means, sum.Mean)
		}
		sort.Float64s(means)
		fmt.Fprintf(&b, "  %-12s %.1fx to %.1fx\n", s.Label, means[0], means[len(means)-1])
	}

	for _, mt := range []bool{false, true} {
		kind := "single-core"
		if mt {
			kind = "multithreaded"
		}
		for _, p := range []Precision{F64, F32} {
			fig, err := st.XCompare(p, mt)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "x86 vs SG2042, %s %v (grand mean across classes):\n", kind, p)
			for _, s := range fig.Series {
				sum, n := 0.0, 0
				for _, cs := range s.ByClass {
					sum += cs.Mean
					n++
				}
				fmt.Fprintf(&b, "  %-12s %.1fx\n", s.Label, sum/float64(n))
			}
		}
	}
	return b.String(), nil
}
