package repro

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/placement"
	"repro/internal/prec"
	"repro/internal/report"
)

// Experiment names accepted by RunExperiment, in the paper's order.
var ExperimentNames = []string{
	"figure1", "table1", "table2", "table3",
	"figure2", "figure3", "table4",
	"figure4", "figure5", "figure6", "figure7",
}

// Options configures RunExperiments and NewEngine.
type Options struct {
	// Parallel is the global concurrency bound for the engine: when a
	// batch fans out, the experiment-level pool and the per-experiment
	// configuration fan-out together never exceed it. 0 picks
	// GOMAXPROCS; 1 runs everything serially on the calling goroutine.
	// Output is identical for every setting.
	Parallel int
	// CSV renders each experiment's CSV form instead of text (Table 4
	// has no CSV form and always renders as text).
	CSV bool
}

func (o Options) workers() int {
	if o.Parallel == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return o.Parallel
}

// Engine is a long-lived experiment service: one memoized Study shared
// across requests, safe for concurrent use from many goroutines. The
// first request for a configuration evaluates it; every later
// experiment that needs the same configuration — in the same request or
// a concurrent one — is served from the cache, bit-identical.
type Engine struct {
	st   *Study
	opts Options
}

// NewEngine returns an Engine with the paper's study defaults.
func NewEngine(opts Options) *Engine {
	st := NewStudy()
	st.Workers = opts.workers()
	return &Engine{st: st, opts: opts}
}

// Run regenerates one experiment by name; "all" runs every experiment
// concatenated in the paper's order.
func (e *Engine) Run(name string) (string, error) {
	name = canonExperiment(name)
	if name == "all" {
		return e.RunMany(ExperimentNames)
	}
	return renderExperiment(e.st, name, e.opts.CSV)
}

// RunMany regenerates the named experiments ("all" expands in place)
// over a bounded worker pool with first-error cancellation, and
// concatenates the outputs in the order the names were given — output
// ordering never depends on scheduling. Each experiment is followed by
// a blank separator line.
func (e *Engine) RunMany(names []string) (string, error) {
	return runMany(e.st, expandExperiments(names), e.opts.CSV, e.opts.workers())
}

// CacheStats reports the engine's memoized suite lookups (hits served
// from the cache, misses evaluated).
func (e *Engine) CacheStats() (hits, misses uint64) { return e.st.CacheStats() }

// RunExperiment regenerates one of the paper's tables or figures and
// returns it rendered as text. Accepted names are listed in
// ExperimentNames; "all" concatenates every experiment. Evaluation is
// serial; use RunExperiments for the concurrent engine.
func RunExperiment(name string) (string, error) {
	st := NewStudy()
	return runExperimentWith(st, canonExperiment(name))
}

// RunExperiments regenerates the named experiments ("all" expands to
// every one) on a bounded worker pool shared with a memoized study, and
// returns their outputs concatenated in the order given. The result is
// byte-identical to running the same names serially.
func RunExperiments(names []string, opts Options) (string, error) {
	return NewEngine(opts).RunMany(names)
}

// RunExperimentCSV is RunExperiment with CSV output (Table 4 has no CSV
// form and renders as text); "all" concatenates every experiment's CSV.
func RunExperimentCSV(name string) (string, error) {
	st := NewStudy()
	name = canonExperiment(name)
	if name == "all" {
		return runMany(st, ExperimentNames, true, st.Workers)
	}
	return renderExperiment(st, name, true)
}

func canonExperiment(name string) string {
	return strings.ToLower(strings.TrimSpace(name))
}

// expandExperiments canonicalizes names and expands "all" in place.
func expandExperiments(names []string) []string {
	out := make([]string, 0, len(names))
	for _, n := range names {
		n = canonExperiment(n)
		if n == "all" {
			out = append(out, ExperimentNames...)
			continue
		}
		out = append(out, n)
	}
	return out
}

// runMany fans the named experiments out against one shared study;
// outs[i] keeps the caller's ordering stable regardless of completion
// order. workers is a global bound: it is split between the
// experiment-level pool and the per-experiment fan-out (outer *
// inner <= workers), so -parallel 8 never runs 8x8 goroutines.
func runMany(st *Study, names []string, csv bool, workers int) (string, error) {
	outer := workers
	if outer > len(names) {
		outer = len(names)
	}
	if outer < 1 {
		outer = 1
	}
	inner := workers / outer
	if inner < 1 {
		inner = 1
	}
	view := st.WithWorkers(inner)
	outs := make([]string, len(names))
	err := par.ForEach(len(names), outer, func(i int) error {
		out, err := renderExperiment(view, names[i], csv)
		if err != nil {
			return err
		}
		outs[i] = out
		return nil
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, out := range outs {
		b.WriteString(out)
		b.WriteString("\n")
	}
	return b.String(), nil
}

func runExperimentWith(st *Study, name string) (string, error) {
	if name == "all" {
		return runMany(st, ExperimentNames, false, st.Workers)
	}
	return renderExperiment(st, name, false)
}

// renderExperiment evaluates one experiment against st and renders it
// as text or CSV — the single switch both RunExperiment flavours and
// the engine share.
func renderExperiment(st *Study, name string, csv bool) (string, error) {
	switch name {
	case "figure1":
		fig, err := st.Figure1()
		if err != nil {
			return "", err
		}
		return figureOut(fig, csv), nil
	case "table1", "table2", "table3":
		tab, err := st.ScalingTable(tablePolicy(name))
		if err != nil {
			return "", err
		}
		if csv {
			return report.ScalingTableCSV(tab), nil
		}
		return report.ScalingTableText(tab), nil
	case "figure2":
		fig, err := st.Figure2()
		if err != nil {
			return "", err
		}
		return figureOut(fig, csv), nil
	case "figure3":
		kb, err := st.Figure3()
		if err != nil {
			return "", err
		}
		if csv {
			return report.KernelBarsCSV(kb), nil
		}
		return report.KernelBarsText(kb), nil
	case "table4":
		return report.Table4Text(core.Table4()), nil
	case "figure4", "figure5", "figure6", "figure7":
		fig, err := xFigure(st, name)
		if err != nil {
			return "", err
		}
		return figureOut(fig, csv), nil
	}
	return "", fmt.Errorf("repro: unknown experiment %q (want one of %s, or all)",
		name, strings.Join(ExperimentNames, ", "))
}

func figureOut(fig Figure, csv bool) string {
	if csv {
		return report.FigureCSV(fig)
	}
	return report.FigureText(fig)
}

func tablePolicy(name string) placement.Policy {
	switch name {
	case "table1":
		return placement.Block
	case "table2":
		return placement.CyclicNUMA
	default:
		return placement.ClusterCyclic
	}
}

func xFigure(st *Study, name string) (Figure, error) {
	switch name {
	case "figure4":
		return st.XCompare(prec.F64, false)
	case "figure5":
		return st.XCompare(prec.F32, false)
	case "figure6":
		return st.XCompare(prec.F64, true)
	default:
		return st.XCompare(prec.F32, true)
	}
}

// HeadlineSummary computes the headline comparisons from the paper's
// conclusions section as a compact text block: C920-vs-U74 factors and
// x86-vs-SG2042 factors at both precisions, single and multi-core.
func HeadlineSummary() (string, error) {
	st := NewStudy()
	st.Noise = 0
	st.Runs = 1
	var b strings.Builder

	fig1, err := st.Figure1()
	if err != nil {
		return "", err
	}
	b.WriteString("C920 vs U74 (VisionFive V2 FP64 baseline), class-average range:\n")
	for _, s := range fig1.Series {
		if !strings.HasPrefix(s.Label, "SG2042") {
			continue
		}
		var means []float64
		for _, sum := range s.ByClass {
			means = append(means, sum.Mean)
		}
		sort.Float64s(means)
		fmt.Fprintf(&b, "  %-12s %.1fx to %.1fx\n", s.Label, means[0], means[len(means)-1])
	}

	for _, mt := range []bool{false, true} {
		kind := "single-core"
		if mt {
			kind = "multithreaded"
		}
		for _, p := range []Precision{F64, F32} {
			fig, err := st.XCompare(p, mt)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "x86 vs SG2042, %s %v (grand mean across classes):\n", kind, p)
			for _, s := range fig.Series {
				sum, n := 0.0, 0
				for _, cs := range s.ByClass {
					sum += cs.Mean
					n++
				}
				fmt.Fprintf(&b, "  %-12s %.1fx\n", s.Label, sum/float64(n))
			}
		}
	}
	return b.String(), nil
}
