package repro

import (
	"fmt"
	"strings"
	"testing"
)

// ExampleEngine_Sweep shows the what-if surface: sweep the SG2042's
// vector width through the widths the x86 comparators ship, on one
// core, and read the class-level speedups against the stock machine.
func ExampleEngine_Sweep() {
	eng := NewEngine(Options{Parallel: 4})
	fig, err := eng.Sweep(SweepSpec{
		Base:    SG2042(),
		Axis:    SweepVector,
		Values:  []float64{128, 256, 512},
		Threads: 1,
		Prec:    F64,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(fig.Title)
	for _, s := range fig.Series {
		fmt.Println(s.Label)
	}
	// Output:
	// Sweep: SG2042 over vector = 128, 256, 512 (FP64, block placement, 1 thread)
	// SG2042/v128
	// SG2042/v256
	// SG2042/v512
}

func vectorSweep(threads int) SweepSpec {
	return SweepSpec{Base: SG2042(), Axis: SweepVector,
		Values: []float64{128, 256, 512}, Threads: threads}
}

// TestSweepSerialParallelCachedByteIdentical is the sweep's acceptance
// property: the serial path, an 8-worker pool, and a warm cache all
// produce identical bytes, in both text and CSV form.
func TestSweepSerialParallelCachedByteIdentical(t *testing.T) {
	for _, csv := range []bool{false, true} {
		serial, err := RunSweep(vectorSweep(1), Options{Parallel: 1, CSV: csv})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			par, err := RunSweep(vectorSweep(1), Options{Parallel: workers, CSV: csv})
			if err != nil {
				t.Fatal(err)
			}
			if par != serial {
				t.Errorf("csv=%v parallel=%d differs from serial", csv, workers)
			}
		}
		eng := NewEngine(Options{Parallel: 4})
		cold, err := eng.SweepFormat(vectorSweep(1), csv)
		if err != nil {
			t.Fatal(err)
		}
		hitsBefore, missesBefore := eng.CacheStats()
		warm, err := eng.SweepFormat(vectorSweep(1), csv)
		if err != nil {
			t.Fatal(err)
		}
		hitsAfter, missesAfter := eng.CacheStats()
		if cold != serial || warm != cold {
			t.Errorf("csv=%v cached sweep differs from cold/serial", csv)
		}
		if missesAfter != missesBefore {
			t.Errorf("csv=%v warm sweep evaluated %d new configurations, want 0",
				csv, missesAfter-missesBefore)
		}
		if hitsAfter == hitsBefore {
			t.Errorf("csv=%v warm sweep hit the cache zero times", csv)
		}
	}
}

// TestSweepSharesEngineCacheAcrossFormats: one engine serves text and
// CSV sweeps from the same suite evaluations.
func TestSweepSharesEngineCacheAcrossFormats(t *testing.T) {
	eng := NewEngine(Options{Parallel: 4})
	if _, err := eng.SweepFormat(vectorSweep(1), false); err != nil {
		t.Fatal(err)
	}
	_, missesBefore := eng.CacheStats()
	if _, err := eng.SweepFormat(vectorSweep(1), true); err != nil {
		t.Fatal(err)
	}
	if _, missesAfter := eng.CacheStats(); missesAfter != missesBefore {
		t.Error("CSV rendering of a warm sweep re-evaluated the suite")
	}
}

func TestSweepAxes(t *testing.T) {
	eng := NewEngine(Options{Parallel: 4})
	cases := []SweepSpec{
		{Base: SG2042(), Axis: SweepCores, Values: []float64{8, 16, 32, 64}},
		{Base: SG2042(), Axis: SweepClock, Values: []float64{1.5, 2.0, 2.5}, Threads: 1},
		{Base: SG2042(), Axis: SweepNUMA, Values: []float64{1, 2, 4}},
		{Base: SG2044(), Axis: SweepVector, Values: []float64{128, 256}, Threads: 1},
		{Base: SG2042(), Axis: SweepSockets, Values: []float64{1, 2, 4}},
		{Base: SG2042(), Axis: SweepNodes, Values: []float64{1, 2, 4}},
		{Base: SG2042x2(), Axis: SweepNodes, Values: []float64{2, 4}},
	}
	for _, spec := range cases {
		fig, err := eng.Sweep(spec)
		if err != nil {
			t.Fatalf("%s: %v", spec.Axis, err)
		}
		if len(fig.Series) != len(spec.Values) {
			t.Errorf("%s: %d series for %d values", spec.Axis, len(fig.Series), len(spec.Values))
		}
		for _, s := range fig.Series {
			if len(s.ByClass) == 0 {
				t.Errorf("%s: series %s has no class summaries", spec.Axis, s.Label)
			}
		}
	}
}

// TestSweepCoresScaling: a full-occupancy core sweep on the SG2042 must
// show more cores running the suite faster on balance — the speedup
// that motivates 64-core RISC-V in the first place.
func TestSweepCoresScaling(t *testing.T) {
	eng := NewEngine(Options{Parallel: 4})
	fig, err := eng.Sweep(SweepSpec{Base: SG2042(), Axis: SweepCores, Values: []float64{8, 32}})
	if err != nil {
		t.Fatal(err)
	}
	mean := func(i int) float64 {
		sum, n := 0.0, 0
		for _, cs := range fig.Series[i].ByClass {
			sum += cs.Mean
			n++
		}
		return sum / float64(n)
	}
	if m8, m32 := mean(0), mean(1); m32 <= m8 {
		t.Errorf("32-core variant (%.2fx) not faster than 8-core (%.2fx)", m32, m8)
	}
}

// TestSweepVectorWidthIsMemoryBound pins the sweep's headline what-if
// answer: widening the C920's vector registers alone barely moves the
// suite, because the model has it bandwidth-bound — the same reason the
// real SG2044's gains came from its memory system, not wider vectors.
// Every class must stay near the stock machine, and nothing may
// regress.
func TestSweepVectorWidthIsMemoryBound(t *testing.T) {
	eng := NewEngine(Options{Parallel: 4})
	fig, err := eng.Sweep(vectorSweep(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		for c, cs := range s.ByClass {
			if cs.Mean < 0.90 || cs.Mean > 1.25 {
				t.Errorf("%s %v: class mean %v strayed from the stock machine", s.Label, c, cs.Mean)
			}
		}
	}
}

// TestNodesSweepDeterministic extends the byte-identity contract to
// the topology axes: a nodes sweep past 64 cores produces the same
// bytes serially, on an 8-worker pool, and from a warm cache.
func TestNodesSweepDeterministic(t *testing.T) {
	spec := SweepSpec{Base: SG2042(), Axis: SweepNodes, Values: []float64{1, 2, 4}}
	serial, err := RunSweep(spec, Options{Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SG2042/node2", "SG2042/node4"} {
		if !strings.Contains(serial, want) {
			t.Fatalf("nodes sweep missing %q:\n%s", want, serial)
		}
	}
	par, err := RunSweep(spec, Options{Parallel: 8})
	if err != nil {
		t.Fatal(err)
	}
	if par != serial {
		t.Error("parallel nodes sweep differs from serial")
	}
	eng := NewEngine(Options{Parallel: 4})
	if _, err := eng.SweepFormat(spec, false); err != nil {
		t.Fatal(err)
	}
	_, missesBefore := eng.CacheStats()
	warm, err := eng.SweepFormat(spec, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, missesAfter := eng.CacheStats(); missesAfter != missesBefore {
		t.Error("warm nodes sweep re-evaluated configurations")
	}
	if warm != serial {
		t.Error("cached nodes sweep differs from serial")
	}
}

// TestSocketsSweepPenalisesTheLink: doubling sockets doubles cores and
// controllers, so the suite speeds up — but by less than the
// equivalent WithCores doubling would suggest, because cross-socket
// placements pay the link. The series must at least beat the
// single-socket base and stay finite.
func TestSocketsSweepPenalisesTheLink(t *testing.T) {
	eng := NewEngine(Options{Parallel: 4})
	fig, err := eng.Sweep(SweepSpec{Base: SG2042(), Axis: SweepSockets, Values: []float64{2}})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		if s.Label != "SG2042/s2" {
			t.Errorf("series label = %q", s.Label)
		}
	}
}

func TestSweepValidation(t *testing.T) {
	eng := NewEngine(Options{Parallel: 2})
	cases := []struct {
		name    string
		spec    SweepSpec
		wantErr string
	}{
		{"nil base", SweepSpec{Axis: SweepCores, Values: []float64{4}}, "no base machine"},
		{"unknown axis", SweepSpec{Base: SG2042(), Axis: "dies", Values: []float64{2}}, "unknown sweep axis"},
		{"no values", SweepSpec{Base: SG2042(), Axis: SweepCores}, "no values"},
		{"fractional cores", SweepSpec{Base: SG2042(), Axis: SweepCores, Values: []float64{2.5}}, "integer"},
		{"zero vector bits", SweepSpec{Base: SG2042(), Axis: SweepVector, Values: []float64{0}}, "integer"},
		{"vectorless widen", SweepSpec{Base: VisionFiveV2(), Axis: SweepVector, Values: []float64{256}}, "no vector unit"},
		{"uneven NUMA", SweepSpec{Base: SG2042(), Axis: SweepNUMA, Values: []float64{3}}, "divide"},
		{"too many points", SweepSpec{Base: SG2042(), Axis: SweepClock, Values: make([]float64, 65)}, "max"},
		{"invalid base", SweepSpec{Base: &Machine{}, Axis: SweepCores, Values: []float64{4}}, "machine"},
	}
	for _, tc := range cases {
		_, err := eng.Sweep(tc.spec)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestSweepCustomMachine: a machine defined as JSON data — not a preset
// — sweeps end to end.
func TestSweepCustomMachine(t *testing.T) {
	data, err := MachineJSON(SG2044())
	if err != nil {
		t.Fatal(err)
	}
	custom, err := MachineFromJSON([]byte(strings.Replace(string(data),
		`"label": "SG2044"`, `"label": "SG2044-custom"`, 1)))
	if err != nil {
		t.Fatal(err)
	}
	out, err := RunSweep(SweepSpec{Base: custom, Axis: SweepClock,
		Values: []float64{2.0, 2.6}, Threads: 1}, Options{Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"SG2044-custom/2GHz", "SG2044-custom/2.6GHz"} {
		if !strings.Contains(out, want) {
			t.Errorf("sweep output missing %q:\n%s", want, out)
		}
	}
}
