package repro

import (
	"repro/internal/core"
	"repro/internal/report"
)

// What-if hardware sweeps: hold the software configuration fixed and
// vary one hardware axis of a base machine — core count, clock, vector
// width, NUMA layout, sockets per node, or fused node count. A sweep
// renders as an ordinary Figure (one series per swept value, ratios
// against the unmodified base), so the text/CSV renderers and the
// determinism contract apply unchanged.

// SweepAxis names the hardware axis a sweep varies.
type SweepAxis = core.SweepAxis

// Sweep axes.
const (
	// SweepCores varies the core count.
	SweepCores = core.SweepCores
	// SweepClock varies the core clock (values in GHz).
	SweepClock = core.SweepClock
	// SweepVector varies the vector register width in bits.
	SweepVector = core.SweepVector
	// SweepNUMA varies the NUMA region count, conserving total memory
	// controllers.
	SweepNUMA = core.SweepNUMA
	// SweepSockets varies the sockets per node, replicating the base's
	// per-socket structure across a coherent inter-socket link.
	SweepSockets = core.SweepSockets
	// SweepNodes varies the fused node count, replicating the base's
	// per-node structure across an inter-node link — the axis strong
	// and weak scaling walkthroughs sweep past 64 cores.
	SweepNodes = core.SweepNodes
)

// SweepAxes lists every sweep axis in presentation order.
func SweepAxes() []SweepAxis { return append([]SweepAxis(nil), core.SweepAxes...) }

// SweepSpec selects a what-if sweep: base machine, axis, values, and
// the fixed software configuration (threads, placement, precision)
// every point runs under. The zero values mean full occupancy, block
// placement, FP32 (the paper's multithreaded default); the CLI and
// HTTP surfaces default to FP64 explicitly.
type SweepSpec = core.SweepSpec

// Sweep evaluates a what-if sweep on the engine's shared study: the
// suite on the base machine and on each derived variant, summarised
// per class as ratios against the base. Points fan out over the
// engine's worker pool and memoize in the same config-keyed cache the
// experiments use, so serial, parallel and cached sweeps are
// bit-identical.
func (e *Engine) Sweep(spec SweepSpec) (Figure, error) {
	return e.st.MachineSweep(spec)
}

// SweepFormat runs Sweep and renders it as text (csv=false) or CSV —
// the exact bytes cmd/sg2042sim -sweep prints and POST /v1/sweep
// serves.
func (e *Engine) SweepFormat(spec SweepSpec, csv bool) (string, error) {
	fig, err := e.Sweep(spec)
	if err != nil {
		return "", err
	}
	if csv {
		return report.FigureCSV(fig), nil
	}
	return report.FigureText(fig), nil
}

// RunSweep is the one-shot form of Engine.SweepFormat: a fresh engine,
// one sweep, rendered per opts.CSV.
func RunSweep(spec SweepSpec, opts Options) (string, error) {
	return NewEngine(opts).SweepFormat(spec, opts.CSV)
}
